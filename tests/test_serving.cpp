// Batching equivalence: a ServingEngine running N interleaved sequences
// must produce logits bitwise identical to N independent single-sequence
// InferenceEngine runs — under BF16, under OWQ weights + log2 softmax, with
// the thread pool on, and across preemption (truncate + replay).
#include "llm/serving_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "eval/perplexity.h"
#include "eval/schemes.h"
#include "llm/engine.h"
#include "reference_decode.h"

namespace opal {
namespace {

ModelConfig tiny_config() {
  return scaled_for_eval(llama2_7b(), 128, 2, 64);
}

const SyntheticModel& tiny_model() {
  static const SyntheticModel model(tiny_config(), 42);
  return model;
}

ServingConfig scfg(std::size_t max_batch, std::size_t n_threads,
                   std::size_t kv_pool_blocks = 0) {
  ServingConfig cfg;
  cfg.max_batch = max_batch;
  cfg.n_threads = n_threads;
  cfg.kv_pool_blocks = kv_pool_blocks;
  return cfg;
}

struct Captured {
  std::map<std::size_t, std::vector<float>> logits_at;  // position -> logits
};

void expect_bitwise_equal(const Decoded& ref,
                          const std::vector<std::size_t>& got_tokens,
                          const Captured& got, const std::string& what) {
  ASSERT_EQ(ref.tokens, got_tokens) << what;
  ASSERT_EQ(ref.logits.size(), got.logits_at.size()) << what;
  for (std::size_t p = 0; p < ref.logits.size(); ++p) {
    const auto it = got.logits_at.find(p);
    ASSERT_NE(it, got.logits_at.end()) << what << " position " << p;
    ASSERT_EQ(ref.logits[p].size(), it->second.size());
    for (std::size_t i = 0; i < ref.logits[p].size(); ++i) {
      ASSERT_EQ(ref.logits[p][i], it->second[i])
          << what << " position " << p << " logit " << i;
    }
  }
}

std::vector<Request> interleaved_requests() {
  // Different lengths and different generation budgets, so the batch holds
  // sequences at different positions on every step.
  return {
      Request{{3, 1, 4, 1, 5}, 6},
      Request{{2, 7}, 9},
      Request{{9, 2, 6, 5, 3, 5, 8}, 3},
      Request{{1}, 12},
      Request{{4, 4, 4}, 0},
  };
}

void run_equivalence(const std::shared_ptr<const PreparedModel>& model,
                     ServingConfig cfg, const std::string& what) {
  const auto requests = interleaved_requests();
  ServingEngine engine(model, cfg);

  std::map<RequestId, Captured> captured;
  engine.set_logits_observer([&](RequestId id, std::size_t pos,
                                 std::span<const float> logits) {
    captured[id].logits_at[pos].assign(logits.begin(), logits.end());
  });

  std::vector<RequestId> ids;
  for (const auto& req : requests) ids.push_back(engine.submit(req));
  engine.run();
  EXPECT_EQ(engine.running(), 0u);
  EXPECT_EQ(engine.queued(), 0u);

  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto ref = reference_decode(model, requests[r].prompt,
                                      requests[r].max_new_tokens);
    const auto& result = engine.result(ids[r]);
    EXPECT_EQ(result.status, RequestStatus::kFinished);
    EXPECT_EQ(result.prompt_len, requests[r].prompt.size());
    expect_bitwise_equal(ref, result.tokens, captured[ids[r]],
                         what + " request " + std::to_string(r));
  }
}

TEST(ServingEngine, BatchOfNMatchesNSingleRuns_Bf16) {
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  run_equivalence(model, scfg(4, 0), "bf16 batch=4");
}

TEST(ServingEngine, BatchSmallerThanRequestsStillMatches) {
  // max_batch = 2 forces queueing + continuous refill while 5 requests run.
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  run_equivalence(model, scfg(2, 0), "bf16 batch=2");
}

TEST(ServingEngine, BatchMatchesSingles_OwqWeightsAndLog2Softmax) {
  const auto calibration = calibrate_model(tiny_model(), 32, 3);
  EngineConfig cfg = scheme_mx_opal(4, 4, 7);
  cfg.log2_softmax = true;
  cfg.softmax_bits = 7;
  cfg.max_seq_len = 32;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg,
                                                     &calibration);
  ASSERT_GT(model->fp_weight_fraction(), 0.0);  // OWQ actually active
  run_equivalence(model, scfg(4, 0), "owq+log2 batch=4");
  // Same config through the thread pool: this is what actually exercises
  // the shared-quantizer thread-safety contract documented in quantizer.h
  // (the BF16 threaded test runs with null quantizers).
  run_equivalence(model, scfg(4, 3), "owq+log2 batch=4 threads=3");
}

TEST(ServingEngine, ThreadPoolDecodeIsBitwiseDeterministic) {
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  run_equivalence(model, scfg(4, 3), "bf16 batch=4 threads=3");
}

TEST(ServingEngine, PreemptTruncateReplayMatchesUninterrupted) {
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  const std::vector<std::size_t> prompt = {3, 1, 4, 1, 5};
  const std::size_t max_new = 6;
  const auto ref = reference_decode(model, prompt, max_new);

  ServingEngine engine(model, scfg(2, 0));
  Captured captured;
  const RequestId id = engine.submit(Request{prompt, max_new});
  engine.set_logits_observer([&](RequestId rid, std::size_t pos,
                                 std::span<const float> logits) {
    if (rid != id) return;
    std::vector<float> now(logits.begin(), logits.end());
    // Replayed positions must reproduce the original logits bitwise.
    const auto it = captured.logits_at.find(pos);
    if (it != captured.logits_at.end()) {
      ASSERT_EQ(it->second, now) << "replay diverged at position " << pos;
    }
    captured.logits_at[pos] = std::move(now);
  });

  // Decode 4 steps, evict back to a 2-token KV prefix, then finish.
  for (int i = 0; i < 4; ++i) engine.step();
  engine.preempt(id, 2);
  EXPECT_EQ(engine.queued(), 1u);
  engine.run();

  const auto& result = engine.result(id);
  EXPECT_EQ(result.status, RequestStatus::kFinished);
  expect_bitwise_equal(ref, result.tokens, captured, "preempt/resume");
}

TEST(ServingEngine, PreemptReplayPreservesSampledStream) {
  // The replay guarantee extends to seeded sampling: a preempted-and-
  // readmitted request must emit the identical continuation, because the
  // RNG stream is checkpointed across the KV release and replayed tokens
  // are fed as known tokens (no draws consumed). Both preemption forms.
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  Request request;
  request.prompt = {3, 1, 4, 1, 5};
  request.max_new_tokens = 9;
  request.sampling.policy = SamplePolicy::kTopP;
  request.sampling.temperature = 0.9f;
  request.sampling.top_k = 16;
  request.sampling.top_p = 0.9f;
  request.sampling.seed = 77;

  ServingEngine uninterrupted(model, scfg(2, 0));
  const RequestId ref_id = uninterrupted.submit(request);
  uninterrupted.run();
  const auto ref = uninterrupted.result(ref_id);
  ASSERT_EQ(ref.status, RequestStatus::kFinished);
  ASSERT_EQ(ref.generated(), 9u);

  for (const std::size_t keep : {std::size_t{0}, std::size_t{2}}) {
    ServingEngine engine(model, scfg(2, 0));
    const RequestId id = engine.submit(request);
    for (int i = 0; i < 7; ++i) engine.step();  // two tokens generated
    ASSERT_GT(engine.result(id).generated(), 0u);
    engine.preempt(id, keep);
    engine.run();
    const auto result = engine.result(id);
    EXPECT_EQ(result.status, RequestStatus::kFinished);
    EXPECT_EQ(result.tokens, ref.tokens) << "keep=" << keep;
    EXPECT_EQ(result.finish_reason, ref.finish_reason) << "keep=" << keep;
  }
}

TEST(ServingEngine, DefaultPreemptReleasesKvAndReplaysFromScratch) {
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  const std::vector<std::size_t> prompt = {9, 2, 6};
  const auto ref = reference_decode(model, prompt, 5);

  ServingEngine engine(model, scfg(2, 0));
  const RequestId id = engine.submit(Request{prompt, 5});
  for (int i = 0; i < 3; ++i) engine.step();
  engine.preempt(id);  // keep_positions = 0: KV allocation dropped
  EXPECT_EQ(engine.queued(), 1u);
  engine.run();
  const auto result = engine.result(id);
  EXPECT_EQ(result.status, RequestStatus::kFinished);
  EXPECT_EQ(result.tokens, ref.tokens);
}

TEST(ServingEngine, EvictsWhenKvCacheExhausted) {
  EngineConfig cfg;
  cfg.max_seq_len = 6;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  ServingEngine engine(model, scfg(2, 0));
  const RequestId longer = engine.submit(Request{{1, 2, 3}, 10});  // wants 13
  const RequestId fits = engine.submit(Request{{5, 6}, 2});
  engine.run();
  EXPECT_EQ(engine.result(longer).status, RequestStatus::kEvicted);
  EXPECT_EQ(engine.result(longer).tokens.size(), 7u);  // 6 fed + 1 generated
  EXPECT_EQ(engine.result(fits).status, RequestStatus::kFinished);
  EXPECT_EQ(engine.result(fits).tokens.size(), 4u);
}

TEST(ServingEngine, ThrowingObserverLeavesEngineConsistent) {
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  const std::vector<std::size_t> prompt = {3, 1, 4};
  const std::size_t max_new = 5;
  const auto ref = reference_decode(model, prompt, max_new);

  ServingEngine engine(model, scfg(2, 0));
  const RequestId id = engine.submit(Request{prompt, max_new});
  int calls = 0;
  engine.set_logits_observer(
      [&](RequestId, std::size_t, std::span<const float>) {
        if (++calls == 2) throw std::runtime_error("observer boom");
      });
  EXPECT_EQ(engine.step(), 1u);
  EXPECT_THROW(engine.step(), std::runtime_error);
  // The step's bookkeeping completed before the throw: continuing decodes
  // the exact same tokens as an uninterrupted run.
  engine.set_logits_observer(nullptr);
  engine.run();
  const auto result = engine.result(id);
  EXPECT_EQ(result.status, RequestStatus::kFinished);
  EXPECT_EQ(result.tokens, ref.tokens);
}

TEST(ServingEngine, ObserverThrowOnFinishingStepDoesNotStrandSequence) {
  // The throw lands on the step where the scoring request completes: the
  // sequence must still retire as kFinished on the next step instead of
  // being fed past the end of its token vector.
  EngineConfig cfg;
  cfg.max_seq_len = 16;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  ServingEngine engine(model, scfg(2, 0));
  const RequestId id = engine.submit(Request{{3, 1}, 0});
  int calls = 0;
  engine.set_logits_observer(
      [&](RequestId, std::size_t, std::span<const float>) {
        if (++calls == 2) throw std::runtime_error("observer boom");
      });
  EXPECT_EQ(engine.step(), 1u);
  EXPECT_THROW(engine.step(), std::runtime_error);  // finishing step
  engine.run();
  EXPECT_EQ(engine.result(id).status, RequestStatus::kFinished);
  EXPECT_EQ(engine.result(id).tokens.size(), 2u);
  EXPECT_EQ(engine.running(), 0u);
}

TEST(ServingEngine, CompletesAtExactKvCapacityBoundary) {
  // prompt + max_new == max_seq_len + 1: every requested token fits because
  // the final generated token is never fed, so this must be kFinished, not
  // kEvicted.
  EngineConfig cfg;
  cfg.max_seq_len = 6;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  ServingEngine engine(model, scfg(1, 0));
  const RequestId id = engine.submit(Request{{1, 2, 3}, 4});  // target 7
  engine.run();
  const auto result = engine.result(id);
  EXPECT_EQ(result.status, RequestStatus::kFinished);
  EXPECT_EQ(result.tokens.size(), 7u);
  EXPECT_EQ(result.generated(), 4u);
}

TEST(ServingEngine, SequencesAtDifferentPositionsCoexist) {
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  ServingEngine engine(model, scfg(2, 0));
  engine.submit(Request{{1, 2, 3, 4, 5, 6}, 2});
  engine.submit(Request{{7}, 3});
  // After two steps: seq A is mid-prompt (position 2), seq B has finished
  // its prompt and is generating (position 2 but token index 2 of 4).
  engine.step();
  engine.step();
  EXPECT_EQ(engine.running(), 2u);
  const auto decoded = engine.step();
  EXPECT_EQ(decoded, 2u);  // both still decode in the same step
  engine.run();
}

TEST(ServingEngine, RejectsEmptyPromptAndUnknownId) {
  EngineConfig cfg;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  ServingEngine engine(model, scfg(2, 0));
  EXPECT_THROW(engine.submit(Request{{}, 4}), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(engine.result(123)), std::invalid_argument);
  EXPECT_THROW(engine.preempt(123), std::invalid_argument);
  // Out-of-vocab tokens are rejected at submit time: a throw mid-batch
  // would desync the co-batched sequences' KV caches.
  const std::size_t vocab = tiny_model().config().vocab;
  EXPECT_THROW(engine.submit(Request{{1, vocab}, 0}), std::invalid_argument);
  const RequestId ok = engine.submit(Request{{1, vocab - 1}, 1});
  engine.run();
  EXPECT_EQ(engine.result(ok).status, RequestStatus::kFinished);
}

TEST(ServingEngine, ClearFinishedDropsRetainedResults) {
  EngineConfig cfg;
  cfg.max_seq_len = 16;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  ServingEngine engine(model, scfg(2, 0));
  const RequestId id = engine.submit(Request{{3, 4}, 2});
  engine.run();
  EXPECT_TRUE(engine.finished(id));
  engine.clear_finished();
  EXPECT_THROW(static_cast<void>(engine.result(id)), std::invalid_argument);
  // The engine keeps serving after a harvest.
  const RequestId next = engine.submit(Request{{5}, 1});
  engine.run();
  EXPECT_EQ(engine.result(next).status, RequestStatus::kFinished);
}

TEST(ServingEngine, SharedPreparedModelAcrossFacadesAndServing) {
  // One PreparedModel serves an InferenceEngine facade and a batched
  // engine at the same time; storage accounting is shared, not repeated.
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  InferenceEngine facade(model);
  ServingEngine serving(model, scfg(2, 0));
  EXPECT_EQ(facade.weight_storage_bits(), model->weight_storage_bits());
  const RequestId id = serving.submit(Request{{3}, 2});
  serving.run();
  const auto logits = facade.step(3);
  EXPECT_EQ(serving.result(id).tokens.size(), 3u);
  EXPECT_EQ(logits.size(), tiny_model().config().vocab);
}

TEST(Perplexity, BatchedEvaluationMatchesPerStream) {
  EngineConfig cfg;
  cfg.max_seq_len = 48;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);

  std::vector<std::vector<std::size_t>> streams;
  InferenceEngine generator(model);
  for (std::uint64_t s = 0; s < 4; ++s) {
    streams.push_back(generate_stream(generator, 24, 100 + s));
  }

  const auto batched = evaluate_perplexity_batched(*model, streams, 2);
  ASSERT_EQ(batched.size(), streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    InferenceEngine single(model);
    const double expected = evaluate_perplexity(single, streams[s]);
    EXPECT_EQ(batched[s], expected) << "stream " << s;  // bitwise
  }
}

TEST(Perplexity, BatchedEvaluationRejectsOverlongStream) {
  EngineConfig cfg;
  cfg.max_seq_len = 8;
  const PreparedModel model(tiny_model(), cfg);
  // 9 predictions need 9 cached positions > 8: must fail loudly instead of
  // silently scoring a truncated prefix.
  std::vector<std::vector<std::size_t>> streams = {
      {0, 1, 2, 3, 4, 5, 6, 7, 0, 1}};
  EXPECT_THROW(
      static_cast<void>(evaluate_perplexity_batched(model, streams)),
      std::invalid_argument);
  // A stream needing exactly max_seq_len fed tokens is fine.
  streams[0].pop_back();
  const auto ppl = evaluate_perplexity_batched(model, streams);
  EXPECT_TRUE(std::isfinite(ppl[0]));
}

// --- Paged KV / memory-aware serving ---

TEST(ServingEngine, QuarterFootprintPoolServesFullBatchIdentically) {
  // Acceptance: the pool holds 1/4 of the dense-cache footprint of
  // max_batch sequences — dense allocation could keep exactly ONE
  // max_seq_len cache in that memory — yet the paged engine runs all 4
  // slots concurrently and every result is bitwise identical to the dense
  // fp32 baseline.
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  cfg.kv_block_size = 8;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);

  const std::size_t dense_blocks = 4 * model->kv_blocks_per_sequence();
  ServingConfig serving = scfg(4, 0, dense_blocks / 4);
  ASSERT_EQ(dense_blocks / 4, 16u);  // 2 layers * 2 (K,V) * 4 columns
  ServingEngine engine(model, serving);
  EXPECT_EQ(engine.kv_pool().n_blocks(), dense_blocks / 4);

  // Every request stays within one block column (<= 8 fed positions), so
  // four of them fit the squeezed pool simultaneously.
  const std::vector<Request> requests = {
      Request{{3, 1, 4}, 5}, Request{{2, 7}, 6},  Request{{9, 2, 6, 5}, 4},
      Request{{1}, 8},       Request{{4, 4}, 7},  Request{{8, 3, 5}, 6},
  };
  std::vector<RequestId> ids;
  for (const auto& req : requests) ids.push_back(engine.submit(req));

  std::size_t max_running = 0;
  while (engine.step() > 0) {
    max_running = std::max(max_running, engine.running());
  }
  // Strictly more concurrency than the one dense cache this memory holds.
  EXPECT_EQ(max_running, 4u);

  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto ref = reference_decode(model, requests[r].prompt,
                                      requests[r].max_new_tokens);
    const auto result = engine.result(ids[r]);
    EXPECT_EQ(result.status, RequestStatus::kFinished) << "request " << r;
    EXPECT_EQ(result.tokens, ref.tokens) << "request " << r;
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.blocks_in_use, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ServingEngine, PoolExhaustionPreemptsThenReadmitsIdentically) {
  // A pool far below the batch's working set: sequences crossing block
  // boundaries trigger recompute preemption mid-flight, and the replayed
  // positions must reproduce the original logits bitwise (fp32 KV).
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  cfg.kv_block_size = 4;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  const auto requests = interleaved_requests();

  ServingEngine engine(model, scfg(4, 0, 20));
  std::map<RequestId, Captured> captured;
  engine.set_logits_observer([&](RequestId id, std::size_t pos,
                                 std::span<const float> logits) {
    std::vector<float> now(logits.begin(), logits.end());
    auto& slot = captured[id].logits_at[pos];
    if (!slot.empty()) {
      ASSERT_EQ(slot, now) << "replay diverged at position " << pos;
    }
    slot = std::move(now);
  });
  std::vector<RequestId> ids;
  for (const auto& req : requests) ids.push_back(engine.submit(req));
  engine.run();

  EXPECT_GT(engine.stats().preemptions, 0u);  // pressure actually happened
  EXPECT_EQ(engine.stats().evictions, 0u);    // ...but nothing was dropped
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto ref = reference_decode(model, requests[r].prompt,
                                      requests[r].max_new_tokens);
    const auto result = engine.result(ids[r]);
    EXPECT_EQ(result.status, RequestStatus::kFinished) << "request " << r;
    expect_bitwise_equal(ref, result.tokens, captured[ids[r]],
                         "exhaustion/readmit request " + std::to_string(r));
  }
}

TEST(ServingEngine, LoneSequenceThePoolCannotGrowIsEvicted) {
  // One block column only: a request needing more positions than one
  // column covers cannot grow and there is nobody to preempt, so it
  // retires as kEvicted (forward progress instead of livelock).
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  cfg.kv_block_size = 4;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  ServingEngine engine(model, scfg(2, 0, 4));  // 2 layers * 2 = one column
  const RequestId id = engine.submit(Request{{1, 2, 3}, 10});
  engine.run();
  const auto result = engine.result(id);
  EXPECT_EQ(result.status, RequestStatus::kEvicted);
  EXPECT_EQ(result.tokens.size(), 5u);  // 4 fed positions + 1 generated
  EXPECT_EQ(engine.stats().evictions, 1u);
  EXPECT_EQ(engine.stats().blocks_in_use, 0u);
}

TEST(ServingEngine, QueuedKeptPrefixIsReclaimedBeforeLoneEviction) {
  // A manually preempted sequence parked in the queue with a kept prefix
  // still owns its blocks. When the lone running sequence needs a new
  // column and the pool is dry, that prefix must be downgraded to full
  // recompute (blocks reclaimed) instead of evicting the runner.
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  cfg.kv_block_size = 4;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  // 3 block columns total (2 layers * 2 * 3 = 12 blocks); A alone needs
  // all three for its 12 fed positions.
  ServingEngine engine(model, scfg(2, 0, 12));
  const std::vector<std::size_t> prompt_a = {3, 1, 4};
  const auto ref_a = reference_decode(model, prompt_a, 10);
  const RequestId a = engine.submit(Request{prompt_a, 10});
  const RequestId b = engine.submit(Request{{2, 7}, 6});
  const RequestId c = engine.submit(Request{{5}, 2});
  for (int i = 0; i < 2; ++i) engine.step();
  // B parks in the queue holding one column; C takes its slot, so B stays
  // queued (both slots busy) while A grows toward the whole pool.
  engine.preempt(b, 2);
  engine.run();
  EXPECT_EQ(engine.result(a).status, RequestStatus::kFinished);
  EXPECT_EQ(engine.result(a).tokens, ref_a.tokens);
  EXPECT_EQ(engine.result(b).status, RequestStatus::kFinished);
  EXPECT_EQ(engine.result(c).status, RequestStatus::kFinished);
  EXPECT_EQ(engine.stats().evictions, 0u);
  // Manual preempt of B, pressure preempt of C, and B's prefix reclaim.
  EXPECT_GE(engine.stats().preemptions, 3u);
  EXPECT_EQ(engine.stats().blocks_in_use, 0u);
}

TEST(ServingEngine, StatsTrackBlocksAndCounters) {
  EngineConfig cfg;
  cfg.max_seq_len = 16;
  cfg.kv_block_size = 4;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  ServingEngine engine(model, scfg(2, 0));
  EXPECT_EQ(engine.stats().blocks_in_use, 0u);
  EXPECT_EQ(engine.stats().blocks_free, engine.kv_pool().n_blocks());

  engine.submit(Request{{3, 1, 4}, 2});
  engine.submit(Request{{2}, 3});
  engine.step();
  const auto mid = engine.stats();
  EXPECT_EQ(mid.running, 2u);
  EXPECT_GT(mid.blocks_in_use, 0u);
  EXPECT_EQ(mid.tokens_decoded, 2u);

  engine.run();
  const auto end = engine.stats();
  EXPECT_EQ(end.running, 0u);
  EXPECT_EQ(end.queued, 0u);
  EXPECT_EQ(end.blocks_in_use, 0u);
  EXPECT_EQ(end.blocks_free, engine.kv_pool().n_blocks());
  // 4 fed + 1 last-generated-not-fed, and 3 fed + 1, per feeding rule.
  EXPECT_EQ(end.tokens_decoded, 7u);
  EXPECT_EQ(end.preemptions, 0u);
  EXPECT_EQ(end.evictions, 0u);
  // The high-water mark outlives the blocks that set it.
  EXPECT_GE(end.blocks_peak, mid.blocks_in_use);
  EXPECT_GT(end.blocks_peak, 0u);
  // No prefix cache configured: its counters stay zero.
  EXPECT_EQ(end.blocks_reclaimable, 0u);
  EXPECT_EQ(end.prefix_hits + end.prefix_misses, 0u);
  EXPECT_EQ(engine.prefix_cache(), nullptr);
}

TEST(ServingEngine, ReleaseDropsOneHarvestedResult) {
  EngineConfig cfg;
  cfg.max_seq_len = 16;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  ServingEngine engine(model, scfg(2, 0));
  const RequestId a = engine.submit(Request{{3, 4}, 2});
  const RequestId b = engine.submit(Request{{5}, 2});
  EXPECT_FALSE(engine.release(a));  // still in flight: nothing retained yet
  engine.run();
  EXPECT_TRUE(engine.release(a));
  EXPECT_FALSE(engine.release(a));  // already dropped
  EXPECT_THROW(static_cast<void>(engine.result(a)), std::invalid_argument);
  EXPECT_EQ(engine.result(b).status, RequestStatus::kFinished);  // untouched
}

TEST(ServingEngine, QuantizedKvModesAreDeterministic) {
  for (const KvQuantMode mode : {KvQuantMode::kInt8, KvQuantMode::kLog2}) {
    EngineConfig cfg;
    cfg.max_seq_len = 32;
    cfg.kv_block_size = 4;
    cfg.kv_mode = mode;
    auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
    std::vector<std::vector<std::size_t>> tokens_per_run;
    for (int run = 0; run < 2; ++run) {
      ServingEngine engine(model, scfg(2, 0));
      const RequestId a = engine.submit(Request{{3, 1, 4, 1, 5}, 6});
      const RequestId b = engine.submit(Request{{2, 7}, 8});
      engine.run();
      EXPECT_EQ(engine.result(a).status, RequestStatus::kFinished);
      EXPECT_EQ(engine.result(b).status, RequestStatus::kFinished);
      EXPECT_EQ(engine.result(a).generated(), 6u);
      EXPECT_EQ(engine.result(b).generated(), 8u);
      tokens_per_run.push_back(engine.result(a).tokens);
    }
    EXPECT_EQ(tokens_per_run[0], tokens_per_run[1])
        << "kv mode " << to_string(mode);
  }
}

TEST(ServingEngine, SharedPoolAcrossTwoEngines) {
  EngineConfig cfg;
  cfg.max_seq_len = 16;
  cfg.kv_block_size = 4;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  auto pool = std::make_shared<KvBlockPool>(model->make_kv_pool(2.0));

  ServingConfig shared_cfg = scfg(2, 0);
  shared_cfg.kv_pool = pool;
  ServingEngine a(model, shared_cfg);
  ServingEngine b(model, shared_cfg);
  const RequestId ra = a.submit(Request{{3, 1}, 4});
  const RequestId rb = b.submit(Request{{9, 2, 6}, 3});
  // Interleave: both engines draw blocks from the same pool.
  while (a.step() + b.step() > 0) {
  }
  EXPECT_EQ(a.result(ra).status, RequestStatus::kFinished);
  EXPECT_EQ(b.result(rb).status, RequestStatus::kFinished);
  EXPECT_EQ(pool->blocks_in_use(), 0u);
  // Each engine's stats read the shared pool.
  EXPECT_EQ(a.stats().blocks_free, pool->n_blocks());
  EXPECT_EQ(b.stats().blocks_free, pool->n_blocks());
}

TEST(ServingEngine, SharedPoolTransientPressureStallsInsteadOfEvicting) {
  // Engine B holds the shared pool's remaining column when engine A's lone
  // sequence hits a block boundary. That shortfall is transient — A must
  // stall (step() == 0, sequence intact) rather than hard-evict, and then
  // finish identically once B drains.
  EngineConfig cfg;
  cfg.max_seq_len = 16;
  cfg.kv_block_size = 4;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  // Two block columns total: one for A's first 4 positions, one for B.
  auto pool = std::make_shared<KvBlockPool>(8, 4, tiny_config().d_model);
  ServingConfig shared_cfg = scfg(1, 0);
  shared_cfg.kv_pool = pool;
  ServingEngine a(model, shared_cfg);
  ServingEngine b(model, shared_cfg);

  const std::vector<std::size_t> prompt_a = {3, 1, 4};
  const auto ref_a = reference_decode(model, prompt_a, 4);  // 6 fed positions
  const RequestId ra = a.submit(Request{prompt_a, 4});
  const RequestId rb = b.submit(Request{{2, 7}, 1});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.step(), 1u);  // A fills column 1
  EXPECT_EQ(b.step(), 1u);                              // B takes column 2
  EXPECT_EQ(pool->free_blocks(), 0u);

  EXPECT_EQ(a.step(), 0u);  // stalled, not evicted
  EXPECT_EQ(a.result(ra).status, RequestStatus::kRunning);
  EXPECT_EQ(a.stats().evictions, 0u);

  b.run();  // B finishes and returns its column
  EXPECT_EQ(b.result(rb).status, RequestStatus::kFinished);
  a.run();  // A resumes exactly where it stalled
  EXPECT_EQ(a.result(ra).status, RequestStatus::kFinished);
  EXPECT_EQ(a.result(ra).tokens, ref_a.tokens);
  EXPECT_EQ(a.stats().evictions, 0u);
  EXPECT_EQ(pool->blocks_in_use(), 0u);
}

TEST(Perplexity, QuantizedKvStaysCloseToFp32) {
  std::vector<std::vector<std::size_t>> streams;
  {
    EngineConfig gen_cfg;
    gen_cfg.max_seq_len = 48;
    auto teacher = std::make_shared<const PreparedModel>(tiny_model(),
                                                         gen_cfg);
    InferenceEngine generator(teacher);
    for (std::uint64_t s = 0; s < 2; ++s) {
      streams.push_back(generate_stream(generator, 32, 200 + s));
    }
  }
  double ppl_by_mode[3] = {};
  const KvQuantMode modes[3] = {KvQuantMode::kFp32, KvQuantMode::kInt8,
                                KvQuantMode::kLog2};
  for (int m = 0; m < 3; ++m) {
    EngineConfig cfg;
    cfg.max_seq_len = 48;
    cfg.kv_block_size = 8;
    cfg.kv_mode = modes[m];
    const PreparedModel model(tiny_model(), cfg);
    const auto ppl = evaluate_perplexity_batched(model, streams);
    double log_sum = 0.0;
    for (const double p : ppl) log_sum += std::log(p);
    ppl_by_mode[m] = std::exp(log_sum / 2.0);
    EXPECT_TRUE(std::isfinite(ppl_by_mode[m]));
  }
  // int8 KV barely moves perplexity; log2-7bit costs more but must stay in
  // the same regime (not a blow-up) — the paper's narrow-bit thesis.
  EXPECT_LT(std::fabs(std::log(ppl_by_mode[1] / ppl_by_mode[0])), 0.1);
  EXPECT_LT(std::fabs(std::log(ppl_by_mode[2] / ppl_by_mode[0])), 0.7);
}

}  // namespace
}  // namespace opal
