#include "quant/policy.h"

#include <gtest/gtest.h>

#include "quant/minmax.h"
#include "quant/mx_opal.h"
#include "quant/mxint.h"

namespace opal {
namespace {

TEST(Policy, A47BitsPerSite) {
  const auto policy = policy_a4_7(QuantScheme::kMxOpal);
  EXPECT_EQ(policy.bits_for(ActivationSite::kPostLayerNorm), 4);
  EXPECT_EQ(policy.bits_for(ActivationSite::kAttentionInput), 7);
  EXPECT_EQ(policy.bits_for(ActivationSite::kGeneral), 7);
  EXPECT_EQ(policy.label(), "A4/7");
}

TEST(Policy, A35BitsPerSite) {
  const auto policy = policy_a3_5(QuantScheme::kMinMax);
  EXPECT_EQ(policy.bits_for(ActivationSite::kPostLayerNorm), 3);
  EXPECT_EQ(policy.bits_for(ActivationSite::kGeneral), 5);
  EXPECT_EQ(policy.label(), "A3/5");
}

TEST(Policy, UniformLabel) {
  EXPECT_EQ(policy_uniform(QuantScheme::kMxOpal, 7).label(), "A7");
  EXPECT_EQ(policy_bf16().label(), "A16");
}

TEST(Policy, FactoryBuildsMatchingQuantizer) {
  const auto policy = policy_a4_7(QuantScheme::kMxOpal);
  const auto low = policy.make_quantizer(ActivationSite::kPostLayerNorm);
  const auto high = policy.make_quantizer(ActivationSite::kGeneral);
  ASSERT_NE(low, nullptr);
  ASSERT_NE(high, nullptr);
  EXPECT_EQ(low->name(), "MX-OPAL4");
  EXPECT_EQ(high->name(), "MX-OPAL7");
  EXPECT_NE(dynamic_cast<const MxOpalQuantizer*>(low.get()), nullptr);
}

TEST(Policy, MinMaxAndMxIntFactories) {
  const auto mm = policy_a4_7(QuantScheme::kMinMax)
                      .make_quantizer(ActivationSite::kGeneral);
  EXPECT_NE(dynamic_cast<const MinMaxQuantizer*>(mm.get()), nullptr);
  const auto mx = policy_a4_7(QuantScheme::kMxInt)
                      .make_quantizer(ActivationSite::kGeneral);
  EXPECT_NE(dynamic_cast<const MxIntQuantizer*>(mx.get()), nullptr);
}

TEST(Policy, Bf16ReturnsNull) {
  const auto policy = policy_bf16();
  EXPECT_EQ(policy.make_quantizer(ActivationSite::kGeneral), nullptr);
  EXPECT_EQ(policy.make_quantizer(ActivationSite::kPostLayerNorm), nullptr);
}

TEST(Policy, SchemeNames) {
  EXPECT_EQ(to_string(QuantScheme::kNone), "BF16");
  EXPECT_EQ(to_string(QuantScheme::kMinMax), "MinMax");
  EXPECT_EQ(to_string(QuantScheme::kMxInt), "MXINT");
  EXPECT_EQ(to_string(QuantScheme::kMxOpal), "MX-OPAL");
}

TEST(Policy, SiteNames) {
  EXPECT_EQ(to_string(ActivationSite::kPostLayerNorm), "post-LN");
  EXPECT_EQ(to_string(ActivationSite::kGeneral), "general");
}

}  // namespace
}  // namespace opal
