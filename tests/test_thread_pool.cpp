#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace opal {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::size_t sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

TEST(ThreadPool, EmptyJobReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(8, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPool, PropagatesExceptionToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 4);
}

}  // namespace
}  // namespace opal
