// Cross-cutting algebraic properties of the quantizers — invariants that
// hold by construction of the formats and catch subtle encoding bugs that
// pointwise tests miss.
#include <gtest/gtest.h>

#include <cmath>

#include "common/float_bits.h"
#include "common/error_metrics.h"
#include "common/rng.h"
#include "quant/minmax.h"
#include "quant/mx_opal.h"
#include "quant/mxfp.h"
#include "quant/mxint.h"

namespace opal {
namespace {

std::vector<float> sample(std::size_t n, std::uint64_t seed) {
  ActivationModel acts(seed, n, 0.02f);
  std::vector<float> v(n);
  acts.sample(v);
  return v;
}

// --- Power-of-two scale equivariance -------------------------------------
// Every microscaling format commutes with multiplication by 2^k: scaling
// the input scales the shared scale, leaving the codes untouched.

class ScaleEquivariance : public ::testing::TestWithParam<int> {};

TEST_P(ScaleEquivariance, MxInt) {
  const int k = GetParam();
  const auto x = sample(256, 1);
  std::vector<float> scaled(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    scaled[i] = std::ldexp(x[i], k);
  }
  MxIntQuantizer quant(128, 4);
  std::vector<float> qx(x.size()), qs(x.size());
  quant.quantize_dequantize(x, qx);
  quant.quantize_dequantize(scaled, qs);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(qs[i], std::ldexp(qx[i], k)) << i;
  }
}

TEST_P(ScaleEquivariance, MxOpal) {
  const int k = GetParam();
  const auto x = sample(256, 2);
  std::vector<float> scaled(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    scaled[i] = std::ldexp(x[i], k);
  }
  MxOpalQuantizer quant(128, 4, 4);
  std::vector<float> qx(x.size()), qs(x.size());
  quant.quantize_dequantize(x, qx);
  quant.quantize_dequantize(scaled, qs);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(qs[i], std::ldexp(qx[i], k)) << i;
  }
}

TEST_P(ScaleEquivariance, MxFp) {
  const int k = GetParam();
  const auto x = sample(256, 3);
  std::vector<float> scaled(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    scaled[i] = std::ldexp(x[i], k);
  }
  MxFpQuantizer quant(128, MiniFloatFormat::e2m3());
  std::vector<float> qx(x.size()), qs(x.size());
  quant.quantize_dequantize(x, qx);
  quant.quantize_dequantize(scaled, qs);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(qs[i], std::ldexp(qx[i], k)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Octaves, ScaleEquivariance,
                         ::testing::Values(-8, -3, -1, 1, 2, 5));

// --- Negation symmetry ----------------------------------------------------
// Sign-magnitude formats quantize -x to exactly -q(x).

TEST(NegationSymmetry, AllMxFormats) {
  const auto x = sample(384, 4);
  std::vector<float> neg(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) neg[i] = -x[i];

  const MxIntQuantizer mxint(128, 5);
  const MxOpalQuantizer opal(128, 5, 4);
  const MxFpQuantizer mxfp(128, MiniFloatFormat::e2m1());
  for (const Quantizer* quant :
       {static_cast<const Quantizer*>(&mxint),
        static_cast<const Quantizer*>(&opal),
        static_cast<const Quantizer*>(&mxfp)}) {
    std::vector<float> qx(x.size()), qn(x.size());
    quant->quantize_dequantize(x, qx);
    quant->quantize_dequantize(neg, qn);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(qn[i], -qx[i]) << quant->name() << " @" << i;
    }
  }
}

// --- Idempotence ----------------------------------------------------------
// Quantizing already-quantized data is the identity (every output value is
// representable in the format that produced it).

TEST(Idempotence, UniformGridQuantizers) {
  const auto x = sample(512, 5);
  const MinMaxQuantizer minmax(128, 4);
  const MxIntQuantizer mxint(128, 4);
  const MxFpQuantizer mxfp(128, MiniFloatFormat::e2m3());
  for (const Quantizer* quant :
       {static_cast<const Quantizer*>(&minmax),
        static_cast<const Quantizer*>(&mxint),
        static_cast<const Quantizer*>(&mxfp)}) {
    std::vector<float> once(x.size()), twice(x.size());
    quant->quantize_dequantize(x, once);
    quant->quantize_dequantize(once, twice);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(twice[i], once[i], 1e-6f) << quant->name() << " @" << i;
    }
  }
}

TEST(Idempotence, MxOpalDriftBounded) {
  // MX-OPAL is *not* exactly idempotent: requantizing can hand the
  // preserved-outlier slots to different elements (quantized non-outliers
  // can tie with former outliers). The drift is second-order though:
  // re-quantization error is far below the original quantization error.
  const auto x = sample(512, 5);
  const MxOpalQuantizer opal(128, 4, 4);
  std::vector<float> once(x.size()), twice(x.size());
  opal.quantize_dequantize(x, once);
  opal.quantize_dequantize(once, twice);
  EXPECT_LT(mse(once, twice), mse(x, once) * 0.25);
}

// --- Error ordering across formats ---------------------------------------
// On outlier-bearing activations the paper's ordering MX-OPAL < MXFP <
// MXINT holds at matched bit budgets, across seeds.

class FormatOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormatOrdering, OpalBeatsBothElementFormats) {
  // Robust across seeds: outlier preservation beats both element formats
  // at the same bit budget. (FP-vs-INT flips with the outlier draw; the
  // fixed-seed comparison lives in test_mxfp.cpp.)
  const auto x = sample(2048, GetParam());
  const MxIntQuantizer mxint(128, 4);
  const MxFpQuantizer mxfp(128, MiniFloatFormat::e2m1());
  const MxOpalQuantizer opal(128, 4, 4);
  std::vector<float> out(x.size());
  mxint.quantize_dequantize(x, out);
  const double err_int = mse(x, out);
  mxfp.quantize_dequantize(x, out);
  const double err_fp = mse(x, out);
  opal.quantize_dequantize(x, out);
  const double err_opal = mse(x, out);
  EXPECT_LT(err_opal, err_fp);
  EXPECT_LT(err_opal, err_int);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatOrdering,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// --- Storage monotonicity --------------------------------------------------

TEST(StorageAccounting, MonotoneInCount) {
  const MxOpalQuantizer quant(128, 4, 4);
  std::size_t prev = 0;
  for (const std::size_t n : {1u, 64u, 128u, 129u, 1000u}) {
    const auto bits = quant.storage_bits(n);
    EXPECT_GT(bits, prev);
    prev = bits;
  }
}

TEST(StorageAccounting, OpalCostsMoreThanMxIntByOmem) {
  const MxOpalQuantizer opal(128, 4, 4);
  const MxIntQuantizer mxint(128, 4);
  const double ratio = static_cast<double>(opal.storage_bits(128 * 64)) /
                       static_cast<double>(mxint.storage_bits(128 * 64));
  EXPECT_NEAR(ratio, opal.memory_overhead(), 0.02);
}

}  // namespace
}  // namespace opal
