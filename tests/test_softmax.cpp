#include "softmax/softmax.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace opal {
namespace {

TEST(SoftmaxReference, SumsToOne) {
  Rng rng = make_rng(1);
  std::vector<float> in(64), out(64);
  fill_gaussian(rng, in, 0.0f, 3.0f);
  softmax_reference(in, out);
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-5);
  for (const float v : out) EXPECT_GT(v, 0.0f);
}

TEST(SoftmaxReference, ShiftInvariant) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  std::vector<float> b = {101.0f, 102.0f, 103.0f};
  std::vector<float> pa(3), pb(3);
  softmax_reference(a, pa);
  softmax_reference(b, pb);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(pa[i], pb[i], 1e-6f);
}

TEST(SoftmaxReference, HandlesExtremeScores) {
  std::vector<float> in = {1000.0f, -1000.0f, 0.0f};
  std::vector<float> out(3);
  softmax_reference(in, out);
  EXPECT_NEAR(out[0], 1.0f, 1e-5f);
  EXPECT_NEAR(out[1], 0.0f, 1e-5f);
}

TEST(Log2SoftmaxExact, UniformScoresGiveLogN) {
  // softmax of 8 equal scores = 1/8 -> -log2 = 3.
  std::vector<float> in(8, 1.0f);
  const auto codes = log2_softmax_exact(in, 7);
  for (const auto c : codes) EXPECT_EQ(c, 3);
}

TEST(Log2SoftmaxExact, ClipsToBitWidth) {
  std::vector<float> in = {0.0f, -100.0f};
  const auto codes = log2_softmax_exact(in, 5);
  EXPECT_EQ(codes[0], 0);    // p ~= 1 -> -log2 ~= 0
  EXPECT_EQ(codes[1], 31);   // p ~= 0 -> clipped to 2^5-1
}

TEST(Log2SoftmaxUnit, MatchesExactWithinOneCode) {
  // The Eq. (3) mantissa-comparison path may differ from true log2
  // rounding by at most one count.
  Rng rng = make_rng(2);
  std::size_t mismatches = 0, total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> in(64);
    fill_gaussian(rng, in, 0.0f, 2.0f);
    const auto exact = log2_softmax_exact(in, 7);
    const auto unit = log2_softmax_unit(in, Log2SoftmaxConfig{7});
    ASSERT_EQ(exact.size(), unit.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      const int diff = std::abs(static_cast<int>(exact[i]) -
                                static_cast<int>(unit[i]));
      EXPECT_LE(diff, 1) << "trial " << trial << " i " << i;
      mismatches += diff != 0;
      ++total;
    }
  }
  // The approximation is good: few elements differ even by one.
  EXPECT_LT(static_cast<double>(mismatches) / static_cast<double>(total),
            0.15);
}

TEST(Log2SoftmaxUnit, DominantScoreGetsCodeZero) {
  std::vector<float> in = {10.0f, -5.0f, -5.0f, -5.0f};
  const auto codes = log2_softmax_unit(in, Log2SoftmaxConfig{7});
  EXPECT_EQ(codes[0], 0);
  for (std::size_t i = 1; i < codes.size(); ++i) EXPECT_GT(codes[i], 10);
}

TEST(Log2SoftmaxUnit, ReconstructedWeightsNearOne) {
  // sum of 2^-code over the row stays within a factor ~2 of 1 (log2
  // quantization halves/doubles at worst per element).
  Rng rng = make_rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> in(100);
    fill_gaussian(rng, in, 0.0f, 1.5f);
    const auto codes = log2_softmax_unit(in, Log2SoftmaxConfig{7});
    std::vector<float> w(codes.size());
    attention_weights_from_codes(codes, w);
    const double sum = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_GT(sum, 0.45) << trial;
    EXPECT_LT(sum, 2.2) << trial;
  }
}

TEST(Log2SoftmaxUnit, SingleElement) {
  std::vector<float> in = {3.0f};
  const auto codes = log2_softmax_unit(in, Log2SoftmaxConfig{7});
  EXPECT_EQ(codes[0], 0);  // softmax of singleton is 1
}

TEST(Log2SoftmaxUnit, LowBitWidthClips) {
  std::vector<float> in(4, 0.0f);
  in[0] = 40.0f;  // others get tiny probabilities
  const auto codes = log2_softmax_unit(in, Log2SoftmaxConfig{3});
  for (std::size_t i = 1; i < codes.size(); ++i) EXPECT_EQ(codes[i], 7);
}

TEST(ShiftAccumulate, MatchesWeightedSum) {
  Rng rng = make_rng(4);
  Matrix v(16, 8);
  fill_gaussian(rng, v.flat(), 0.0f, 1.0f);
  std::vector<float> scores(16);
  fill_gaussian(rng, scores, 0.0f, 1.0f);
  const auto codes = log2_softmax_unit(scores, Log2SoftmaxConfig{7});

  std::vector<float> weights(16);
  attention_weights_from_codes(codes, weights);
  std::vector<float> expected(8), actual(8);
  reference_attn_v(weights, v, expected);
  shift_accumulate_attn_v(codes, v, actual);
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(actual[c], expected[c], 1e-5f) << c;
  }
}

TEST(ShiftAccumulate, ApproximatesReferenceAttention) {
  // End-to-end: log2-quantized attention output stays close to the FP
  // attention output in relative terms.
  Rng rng = make_rng(5);
  Matrix v(64, 32);
  fill_gaussian(rng, v.flat(), 0.0f, 1.0f);
  std::vector<float> scores(64);
  fill_gaussian(rng, scores, 0.0f, 2.0f);

  std::vector<float> probs(64);
  softmax_reference(scores, probs);
  std::vector<float> ref(32), approx(32);
  reference_attn_v(probs, v, ref);
  const auto codes = log2_softmax_unit(scores, Log2SoftmaxConfig{7});
  shift_accumulate_attn_v(codes, v, approx);

  double ref_norm = 0.0, err_norm = 0.0;
  for (std::size_t c = 0; c < 32; ++c) {
    ref_norm += static_cast<double>(ref[c]) * ref[c];
    const double d = static_cast<double>(approx[c]) - ref[c];
    err_norm += d * d;
  }
  EXPECT_LT(std::sqrt(err_norm / ref_norm), 0.6);
}

TEST(ShiftAccumulate, DimensionChecks) {
  Matrix v(4, 8);
  std::vector<std::uint8_t> codes(3);
  std::vector<float> out(8);
  EXPECT_THROW(shift_accumulate_attn_v(codes, v, out),
               std::invalid_argument);
}

// Property sweep: higher code bit-widths monotonically improve the
// attention-map fidelity.
class Log2BitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(Log2BitsSweep, CodesWithinRange) {
  const int bits = GetParam();
  Rng rng = make_rng(100 + bits);
  std::vector<float> in(128);
  fill_gaussian(rng, in, 0.0f, 3.0f);
  const auto codes = log2_softmax_unit(in, Log2SoftmaxConfig{bits});
  for (const auto c : codes) EXPECT_LT(c, 1 << bits);
}

INSTANTIATE_TEST_SUITE_P(Widths, Log2BitsSweep,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace opal
