#include "owq/owq.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/bfloat16.h"
#include "common/error_metrics.h"
#include "common/rng.h"
#include "owq/calibration.h"

namespace opal {
namespace {

TEST(Calibration, HessianDiagIsSumOfSquares) {
  CalibrationStats stats(3);
  stats.accumulate(std::vector<float>{1.0f, 2.0f, -3.0f});
  stats.accumulate(std::vector<float>{0.0f, 2.0f, 1.0f});
  const auto diag = stats.hessian_diag();
  EXPECT_DOUBLE_EQ(diag[0], 1.0);
  EXPECT_DOUBLE_EQ(diag[1], 8.0);
  EXPECT_DOUBLE_EQ(diag[2], 10.0);
  EXPECT_EQ(stats.tokens_seen(), 2u);
}

TEST(Calibration, RankingDescending) {
  CalibrationStats stats(4);
  stats.accumulate(std::vector<float>{1.0f, 3.0f, 2.0f, 0.5f});
  const auto ranked = stats.ranked_channels();
  EXPECT_EQ(ranked, (std::vector<std::size_t>{1, 2, 0, 3}));
}

TEST(Calibration, TopChannelsSortedByIndex) {
  CalibrationStats stats(4);
  stats.accumulate(std::vector<float>{1.0f, 3.0f, 2.0f, 0.5f});
  EXPECT_EQ(stats.top_channels(2), (std::vector<std::size_t>{1, 2}));
}

TEST(Calibration, DimMismatchThrows) {
  CalibrationStats stats(4);
  EXPECT_THROW(stats.accumulate(std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(GroupSymmetric, MaxMagnitudeRepresentable) {
  std::vector<float> in = {0.1f, -2.0f, 1.0f, 0.5f};
  std::vector<float> out(in.size());
  quantize_group_symmetric(in, out, 4);
  // max|w| = 2.0 maps to code 7 with bf16 scale; error <= scale/2.
  const float scale = to_bf16(2.0f / 7.0f);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_LE(std::abs(out[i] - in[i]), scale / 2 + 1e-6f) << i;
  }
}

TEST(GroupSymmetric, ZeroGroup) {
  std::vector<float> in(8, 0.0f), out(8, 1.0f);
  quantize_group_symmetric(in, out, 4);
  for (const float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(Owq, SelectsSensitiveColumns) {
  Rng rng = make_rng(1);
  Matrix w = make_weight_matrix(rng, 64, 400);
  std::vector<double> sens(400, 1.0);
  sens[17] = 1000.0;  // one hot channel
  const auto result = owq_quantize(w, sens, OwqConfig{4, 0.0025, 64});
  // ceil(0.0025 * 400) = 1 column, and it must be #17.
  ASSERT_EQ(result.fp_columns.size(), 1u);
  EXPECT_EQ(result.fp_columns[0], 17u);
  EXPECT_TRUE(result.is_fp_column(17));
  EXPECT_FALSE(result.is_fp_column(16));
}

TEST(Owq, FpColumnsKeptAtBf16Precision) {
  Rng rng = make_rng(2);
  Matrix w = make_weight_matrix(rng, 32, 100);
  std::vector<double> sens(100, 1.0);
  sens[3] = 100.0;
  const auto result = owq_quantize(w, sens, OwqConfig{4, 0.01, 32});
  for (std::size_t r = 0; r < w.rows(); ++r) {
    EXPECT_EQ(result.dequantized(r, 3), to_bf16(w(r, 3)));
  }
}

TEST(Owq, QuantizedColumnsBounded) {
  Rng rng = make_rng(3);
  Matrix w = make_weight_matrix(rng, 128, 64);
  // Without clip optimization the group max is exactly representable and
  // every weight is within half a step.
  const auto result =
      owq_quantize_weight_only(w, OwqConfig{4, 0.0, 128, false});
  // Per-group max error <= scale/2 with scale = max|w|/7 per group.
  for (std::size_t c = 0; c < w.cols(); ++c) {
    float max_abs = 0.0f;
    for (std::size_t r = 0; r < w.rows(); ++r) {
      max_abs = std::max(max_abs, std::abs(w(r, c)));
    }
    const float scale = to_bf16(max_abs / 7.0f);
    for (std::size_t r = 0; r < w.rows(); ++r) {
      EXPECT_LE(std::abs(result.dequantized(r, c) - w(r, c)),
                scale / 2 + 1e-6f);
    }
  }
}

TEST(Owq, CalibrationBeatsWeightEnergyWhenActivationsHaveOutliers) {
  // Weights quantized with activation-aware column selection give lower
  // *output* error for activation streams with outlier channels.
  Rng rng = make_rng(4);
  const std::size_t rows = 48, cols = 256;
  Matrix w = make_weight_matrix(rng, rows, cols);
  ActivationModel acts(5, cols, 0.02f);

  std::vector<double> sens(cols, 0.0);
  std::vector<float> x(cols);
  Matrix calib = acts.sample_matrix(64);
  for (std::size_t t = 0; t < calib.rows(); ++t) {
    for (std::size_t c = 0; c < cols; ++c) {
      sens[c] += static_cast<double>(calib(t, c)) * calib(t, c);
    }
  }

  const OwqConfig cfg{3, 0.02, 48};
  const auto aware = owq_quantize(w, sens, cfg);
  const auto blind = owq_quantize_weight_only(w, cfg);

  double err_aware = 0.0, err_blind = 0.0;
  std::vector<float> y_ref(rows), y_test(rows);
  for (int t = 0; t < 32; ++t) {
    acts.sample(x);
    matvec(w, x, y_ref);
    matvec(aware.dequantized, x, y_test);
    err_aware += mse(y_ref, y_test);
    matvec(blind.dequantized, x, y_test);
    err_blind += mse(y_ref, y_test);
  }
  EXPECT_LT(err_aware, err_blind);
}

TEST(Owq, StorageAccounting) {
  Rng rng = make_rng(6);
  Matrix w = make_weight_matrix(rng, 128, 100);
  std::vector<double> sens(100, 1.0);
  sens[0] = 10.0;
  const OwqConfig cfg{4, 0.01, 128};
  const auto result = owq_quantize(w, sens, cfg);
  // 1 fp column * 128 * 16 + 99 columns * (128*4 + 16 scale).
  EXPECT_EQ(result.storage_bits, 1u * 128 * 16 + 99u * (128 * 4 + 16));
  EXPECT_NEAR(result.fp_fraction(100), 0.01, 1e-9);
}

TEST(Owq, W3KeepsMoreColumnsThanW4) {
  // Paper: 0.25% at W4, 0.33% at W3.
  Rng rng = make_rng(7);
  Matrix w = make_weight_matrix(rng, 16, 3000);
  const auto w4 = owq_quantize_weight_only(w, OwqConfig::w4());
  const auto w3 = owq_quantize_weight_only(w, OwqConfig::w3());
  EXPECT_GT(w3.fp_columns.size(), w4.fp_columns.size());
  EXPECT_NEAR(w4.fp_fraction(3000), 0.0025, 0.001);
  EXPECT_NEAR(w3.fp_fraction(3000), 0.0033, 0.001);
}

TEST(Owq, MoreBitsLowerError) {
  Rng rng = make_rng(8);
  Matrix w = make_weight_matrix(rng, 64, 64);
  const auto q3 = owq_quantize_weight_only(w, OwqConfig{3, 0.0, 64});
  const auto q4 = owq_quantize_weight_only(w, OwqConfig{4, 0.0, 64});
  EXPECT_LT(mse(w.flat(), q4.dequantized.flat()),
            mse(w.flat(), q3.dequantized.flat()));
}

TEST(Owq, RejectsBadConfig) {
  Matrix w(4, 4);
  std::vector<double> sens(4, 1.0);
  EXPECT_THROW(owq_quantize(w, sens, OwqConfig{1, 0.0, 4}),
               std::invalid_argument);
  EXPECT_THROW(owq_quantize(w, sens, OwqConfig{4, 0.0, 0}),
               std::invalid_argument);
  EXPECT_THROW(owq_quantize(w, std::vector<double>(3, 1.0), OwqConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace opal
