// Kernel/layer profiler contract: interposition is invisible (profiled
// runs bitwise identical to silent in every kv_mode, threaded or serial,
// with and without speculation), exact (counts match hand-counted kernel
// invocations on a tiny model), structurally free when off (the dispatch
// table is untouched), and the drift auditor built on top of the profiled
// traces is deterministic across trace serialization.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "accel/device.h"
#include "accel/drift.h"
#include "accel/replay.h"
#include "common/kernel_profiler.h"
#include "common/kernels.h"
#include "eval/schemes.h"
#include "llm/scheduler.h"
#include "llm/serving_engine.h"

namespace opal {
namespace {

ModelConfig tiny_config() {
  return scaled_for_eval(llama2_7b(), 128, 2, 64);
}

const SyntheticModel& tiny_model() {
  static const SyntheticModel model(tiny_config(), 42);
  return model;
}

std::shared_ptr<const PreparedModel> prepared(KvQuantMode mode) {
  EngineConfig cfg;
  cfg.max_seq_len = 64;
  cfg.kv_block_size = 8;
  cfg.kv_mode = mode;
  return std::make_shared<const PreparedModel>(tiny_model(), cfg);
}

std::vector<Request> workload() {
  std::vector<Request> requests;
  const std::size_t lens[4] = {5, 19, 9, 26};
  const std::size_t gens[4] = {6, 9, 4, 12};
  for (std::size_t r = 0; r < 4; ++r) {
    Request req;
    for (std::size_t i = 0; i < lens[r]; ++i) {
      req.prompt.push_back((i * 13 + 7 * r + 3) % 64);
    }
    req.max_new_tokens = gens[r];
    requests.push_back(std::move(req));
  }
  return requests;
}

struct Served {
  std::vector<std::vector<std::size_t>> tokens;
  KernelProfile profile;
  ServingEngine::Stats stats;
  MetricsRegistry::Snapshot snap;
};

Served serve(const std::shared_ptr<const PreparedModel>& model,
             ServingConfig cfg) {
  Served out;
  ServingEngine engine(model, cfg);
  std::vector<RequestId> ids;
  for (const auto& req : workload()) ids.push_back(engine.submit(req));
  engine.run();
  for (const RequestId id : ids) {
    out.tokens.push_back(engine.result(id).tokens);
  }
  out.profile = engine.profile();
  out.stats = engine.stats();
  out.snap = engine.metrics();
  return out;
}

// --- interposition is invisible: bitwise identity in every kv_mode x
// threading x speculation ---

TEST(Profiler, ProfiledRunBitwiseIdenticalEverywhere) {
  for (const KvQuantMode mode :
       {KvQuantMode::kFp32, KvQuantMode::kInt8, KvQuantMode::kLog2}) {
    const auto model = prepared(mode);
    for (const std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
      for (const bool spec : {false, true}) {
        ServingConfig cfg;
        cfg.max_batch = 3;
        cfg.prefill_chunk_tokens = 4;
        cfg.n_threads = threads;
        if (spec) {
          cfg.speculative.policy = DraftPolicy::kRepeat;
          cfg.speculative.draft_tokens = 3;
        }
        const Served silent = serve(model, cfg);
        ServingConfig pcfg = cfg;
        pcfg.profile = true;
        const Served profiled = serve(model, pcfg);
        const std::string where = to_string(mode) + " threads=" +
                                  std::to_string(threads) +
                                  (spec ? " spec" : "");
        EXPECT_EQ(profiled.tokens, silent.tokens) << where;
        EXPECT_EQ(profiled.stats.steps, silent.stats.steps) << where;
        EXPECT_GT(profiled.profile.total_kernel_calls(), 0u) << where;
        EXPECT_EQ(silent.profile.total_kernel_calls(), 0u) << where;
      }
    }
  }
}

// --- threaded fan-out merges to the same counts as serial decode ---

TEST(Profiler, ThreadedCountsMatchSerial) {
  const auto model = prepared(KvQuantMode::kInt8);
  ServingConfig cfg;
  cfg.max_batch = 4;
  cfg.profile = true;
  const Served serial = serve(model, cfg);
  cfg.n_threads = 3;
  const Served threaded = serve(model, cfg);
  for (std::size_t k = 0; k < kKernelKindCount; ++k) {
    EXPECT_EQ(threaded.profile.kernels[k].calls,
              serial.profile.kernels[k].calls)
        << to_string(static_cast<KernelKind>(k));
    EXPECT_EQ(threaded.profile.kernels[k].elems,
              serial.profile.kernels[k].elems)
        << to_string(static_cast<KernelKind>(k));
  }
  for (std::size_t p = 0; p < kLayerPhaseCount; ++p) {
    EXPECT_EQ(threaded.profile.phases[p].calls,
              serial.profile.phases[p].calls)
        << to_string(static_cast<LayerPhase>(p));
  }
}

// --- registry counters are the same numbers as the engine's profile ---

TEST(Profiler, RegistryCountersMirrorProfile) {
  const auto model = prepared(KvQuantMode::kLog2);
  ServingConfig cfg;
  cfg.profile = true;
  const Served r = serve(model, cfg);
  for (std::size_t k = 0; k < kKernelKindCount; ++k) {
    const std::string base =
        "profile.kernel." + to_string(static_cast<KernelKind>(k));
    EXPECT_EQ(r.snap.counter_value(base + ".calls"),
              r.profile.kernels[k].calls)
        << base;
    EXPECT_EQ(r.snap.counter_value(base + ".elems"),
              r.profile.kernels[k].elems)
        << base;
    EXPECT_EQ(r.snap.counter_value(base + ".ns"), r.profile.kernels[k].ns)
        << base;
  }
  for (std::size_t p = 0; p < kLayerPhaseCount; ++p) {
    const std::string base =
        "profile.phase." + to_string(static_cast<LayerPhase>(p));
    EXPECT_EQ(r.snap.counter_value(base + ".calls"),
              r.profile.phases[p].calls)
        << base;
    EXPECT_EQ(r.snap.counter_value(base + ".ns"), r.profile.phases[p].ns)
        << base;
  }
  // A silent engine registers no profile.* families at all.
  ServingConfig off;
  const Served silent = serve(model, off);
  EXPECT_EQ(silent.snap.find_counter("profile.kernel.matvec.calls"),
            nullptr);
}

// --- counts exactly match hand-counted kernel invocations ---

TEST(Profiler, CountsMatchHandCountedInvocations) {
  // Dense fp32 facade of the tiny model, driven token by token with the
  // profiler bound to one local slot. Every dispatch-table call in the
  // forward pass is enumerable by hand:
  //   per step: 6L+1 matvec (Wq,Wk,Wv,Wo,fc1,fc2 per layer + tied
  //   embedding), 2L axpy (both residual adds), 1 scale (logit scale), and
  //   L*H attend_scores + L*H attend_accum (dense cache = one KV segment
  //   per layer, one call per head); norm, softmax, and the activation are
  //   plain loops that never enter the dispatch table.
  const ModelConfig mc = tiny_config();
  const std::size_t L = mc.n_layers;
  const std::size_t H = mc.n_heads;
  const std::size_t d = mc.d_model;
  const auto model = prepared(KvQuantMode::kFp32);

  SequenceState silent_seq = model->make_sequence();
  std::vector<std::vector<float>> silent_logits;
  for (const std::size_t tok : {std::size_t{3}, std::size_t{17},
                                std::size_t{42}}) {
    const auto out = model->step(silent_seq, tok);
    silent_logits.emplace_back(out.begin(), out.end());
  }

  KernelProfile prof;
  KernelProfiler::enable();
  KernelProfiler::bind_slot(&prof);
  SequenceState seq = model->make_sequence();
  std::vector<std::vector<float>> logits;
  for (const std::size_t tok : {std::size_t{3}, std::size_t{17},
                                std::size_t{42}}) {
    const auto out = model->step(seq, tok);
    logits.emplace_back(out.begin(), out.end());
  }
  KernelProfiler::bind_slot(nullptr);
  KernelProfiler::disable();

  EXPECT_EQ(logits, silent_logits);  // bit-for-bit through the wrapper

  const std::size_t steps = 3;
  auto stat = [&prof](KernelKind k) {
    return prof.kernels[static_cast<std::size_t>(k)];
  };
  EXPECT_EQ(stat(KernelKind::kMatvec).calls, steps * (6 * L + 1));
  EXPECT_EQ(stat(KernelKind::kMatvec).elems,
            steps * (L * (4 * d * d + 2 * d * mc.d_ffn) + mc.vocab * d));
  EXPECT_EQ(stat(KernelKind::kAxpy).calls, steps * 2 * L);
  EXPECT_EQ(stat(KernelKind::kAxpy).elems, steps * 2 * L * d);
  EXPECT_EQ(stat(KernelKind::kScale).calls, steps);
  EXPECT_EQ(stat(KernelKind::kScale).elems, steps * mc.vocab);
  // Attention: one scores + one accum call per layer per head per step;
  // elements grow with the cache (1, then 2, then 3 rows of d_head).
  EXPECT_EQ(stat(KernelKind::kAttendScores).calls, steps * L * H);
  EXPECT_EQ(stat(KernelKind::kAttendAccum).calls, steps * L * H);
  EXPECT_EQ(stat(KernelKind::kAttendScores).elems,
            (1 + 2 + 3) * L * H * mc.d_head());
  EXPECT_EQ(stat(KernelKind::kAttendAccum).elems,
            (1 + 2 + 3) * L * H * mc.d_head());
  // Nothing else fires on the dense fp32 path.
  EXPECT_EQ(stat(KernelKind::kDot).calls, 0u);
  EXPECT_EQ(stat(KernelKind::kMatvecTransposed).calls, 0u);
  EXPECT_EQ(stat(KernelKind::kDequantDotInt8).calls, 0u);
  EXPECT_EQ(stat(KernelKind::kDequantScoresInt8).calls, 0u);
  EXPECT_EQ(stat(KernelKind::kDequantAccumLog2).calls, 0u);
  // Phase attribution saw the same structure: one qkv/attend/ffn section
  // per layer per step, two norm sections, one model-level logits section.
  auto phase = [&prof](LayerPhase p) {
    return prof.phases[static_cast<std::size_t>(p)];
  };
  EXPECT_EQ(phase(LayerPhase::kNorm).calls, steps * 2 * L);
  EXPECT_EQ(phase(LayerPhase::kQkv).calls, steps * L);
  EXPECT_EQ(phase(LayerPhase::kAttend).calls, steps * L);
  EXPECT_EQ(phase(LayerPhase::kFfn).calls, steps * L);
  EXPECT_EQ(phase(LayerPhase::kLogits).calls, steps);
  ASSERT_EQ(prof.layers.size(), L);
  for (std::size_t l = 0; l < L; ++l) {
    EXPECT_EQ(prof.layers[l][static_cast<std::size_t>(LayerPhase::kQkv)]
                  .calls,
              steps);
    EXPECT_EQ(
        prof.layers[l][static_cast<std::size_t>(LayerPhase::kLogits)].calls,
        0u);  // logits is model-level, never per-layer
  }
}

// --- zero overhead when off, restore on disable ---

TEST(Profiler, DispatchTableUntouchedWhenOffAndRestoredAfter) {
  const KernelOps* before = &kernels();
  EXPECT_FALSE(KernelProfiler::enabled());
  EXPECT_NE(std::string(before->name), "profiled");

  // A silent engine run leaves the table pointer alone entirely.
  const auto model = prepared(KvQuantMode::kFp32);
  serve(model, ServingConfig{});
  EXPECT_EQ(&kernels(), before);

  // enable/disable nest; the last disable restores the captured pointer.
  KernelProfiler::enable();
  KernelProfiler::enable();
  EXPECT_TRUE(KernelProfiler::enabled());
  EXPECT_EQ(std::string(kernels().name), "profiled");
  EXPECT_EQ(KernelProfiler::underlying(), before);
  KernelProfiler::disable();
  EXPECT_TRUE(KernelProfiler::enabled());  // still one holder
  KernelProfiler::disable();
  EXPECT_FALSE(KernelProfiler::enabled());
  EXPECT_EQ(&kernels(), before);
}

// --- drift auditor: deterministic across trace serialization ---

TEST(Profiler, DriftAuditDeterministicAcrossSerialization) {
  const auto model = prepared(KvQuantMode::kInt8);
  ServingConfig cfg;
  cfg.max_batch = 3;
  cfg.prefill_chunk_tokens = 4;
  cfg.trace = true;
  ServingEngine engine(model, cfg);
  for (const auto& req : workload()) engine.submit(req);
  engine.run();

  const StepTrace lifted = step_trace_from_tracer(engine.tracer());
  std::ostringstream serialized;
  engine.tracer().write_step_trace(serialized);
  const StepTrace parsed = parse_step_trace(serialized.str());

  const DeviceConfig dev = make_opal_device(4, 7, 4);
  const DriftReport a = audit_drift(dev, lifted);
  const DriftReport b = audit_drift(dev, parsed);
  // Steps either audit or are skipped — none vanish.
  EXPECT_EQ(a.n_steps + a.skipped_steps, lifted.steps.size());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_json(), audit_drift(dev, lifted).to_json());
  // Percentiles are nearest-rank: always observed ratios.
  if (a.n_steps > 0) {
    EXPECT_GE(a.ratio_p50, a.ratio_min);
    EXPECT_LE(a.ratio_p99, a.ratio_max);
    EXPECT_GT(a.run_ratio(), 0.0);
    EXPECT_EQ(a.compute_bound_steps + a.dram_bound_steps, a.n_steps);
  }
  // The registry surface lands under the given prefix.
  MetricsRegistry reg;
  a.export_metrics(reg, "drift");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("drift.steps"), a.n_steps);
  EXPECT_NE(snap.find_gauge("drift.run_ratio"), nullptr);
}

}  // namespace
}  // namespace opal
