#include "quant/format.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/bfloat16.h"
#include "common/float_bits.h"

namespace opal {
namespace {

TEST(MemoryOverhead, PaperValues) {
  // Section 3.2: k=128, n=4 gives 2.7% overhead at b=8 and 9.2% at b=4.
  EXPECT_NEAR(mx_opal_memory_overhead(128, 4, 8), 1.027, 0.002);
  EXPECT_NEAR(mx_opal_memory_overhead(128, 4, 4), 1.092, 0.002);
}

TEST(MemoryOverhead, Fig4Table) {
  // Fig 4 insets: OMEM at b=8 for n=1,2,8 -> 1.004/1.012/1.058 and at b=4
  // -> 1.024/1.046/1.185.
  EXPECT_NEAR(mx_opal_memory_overhead(128, 1, 8), 1.004, 0.002);
  EXPECT_NEAR(mx_opal_memory_overhead(128, 2, 8), 1.012, 0.002);
  EXPECT_NEAR(mx_opal_memory_overhead(128, 8, 8), 1.058, 0.002);
  EXPECT_NEAR(mx_opal_memory_overhead(128, 1, 4), 1.024, 0.002);
  EXPECT_NEAR(mx_opal_memory_overhead(128, 2, 4), 1.046, 0.002);
  EXPECT_NEAR(mx_opal_memory_overhead(128, 8, 4), 1.185, 0.002);
}

TEST(MemoryOverhead, ShrinksWithBlockSize) {
  const double small = mx_opal_memory_overhead(32, 4, 8);
  const double large = mx_opal_memory_overhead(512, 4, 8);
  EXPECT_GT(small, large);
  EXPECT_LT(large, 1.02);
}

TEST(MemoryOverhead, RejectsDegenerateBlocks) {
  EXPECT_THROW(static_cast<void>(mx_opal_memory_overhead(4, 4, 8)),
               std::invalid_argument);
}

TEST(Bf16ExponentOf, NormalValues) {
  EXPECT_EQ(bf16_exponent_of(1.0f), 0);
  EXPECT_EQ(bf16_exponent_of(2.0f), 1);
  EXPECT_EQ(bf16_exponent_of(-3.0f), 1);
  EXPECT_EQ(bf16_exponent_of(0.5f), -1);
  EXPECT_EQ(bf16_exponent_of(96.0f), 6);
}

TEST(Bf16ExponentOf, ZeroSentinel) {
  EXPECT_EQ(bf16_exponent_of(0.0f), kZeroExponent);
  EXPECT_EQ(bf16_exponent_of(-0.0f), kZeroExponent);
}

TEST(Bf16ExponentOf, RoundingCanBumpExponent) {
  // A value that bf16-rounds up across a power of two gets the rounded
  // exponent: nextafter(2, 0) -> bf16 2.0 -> exponent 1.
  const float v = std::nextafterf(2.0f, 0.0f);
  EXPECT_EQ(bf16_exponent_of(v), 1);
}

TEST(QuantizeCode, MaxExponentElementKeepsTopBits) {
  // b=4: element with the shared-scale exponent quantizes to its top 3
  // significand bits: 1.75 * 2^0 at scale 0 -> code 7 (1.75 * 4).
  EXPECT_EQ(quantize_code(1.75f, 0, 4, RoundingMode::kNearest), 7);
  EXPECT_EQ(quantize_code(-1.75f, 0, 4, RoundingMode::kNearest), -7);
}

TEST(QuantizeCode, UnderflowsToZero) {
  // An element far below the shared scale shifts out entirely (Fig 2(b)).
  EXPECT_EQ(quantize_code(0.001f, 6, 4, RoundingMode::kTruncate), 0);
}

TEST(QuantizeCode, SaturatesAtMaxCode) {
  EXPECT_EQ(quantize_code(100.0f, 0, 4, RoundingMode::kNearest), 7);
  EXPECT_EQ(quantize_code(-100.0f, 0, 4, RoundingMode::kNearest), -7);
}

TEST(QuantizeCode, TruncateNeverIncreasesMagnitude) {
  for (float v = -4.0f; v <= 4.0f; v += 0.0625f) {
    const auto code = quantize_code(v, 1, 4, RoundingMode::kTruncate);
    const float deq = dequantize_code(code, 1, 4);
    EXPECT_LE(std::abs(deq), std::abs(to_bf16(v)) + 1e-9f) << v;
  }
}

TEST(QuantizeCode, NearestWithinHalfStep) {
  const int scale = 2, bits = 5;
  const float step = exp2i(scale - (bits - 2));
  for (float v = -7.0f; v <= 7.0f; v += 0.03125f) {
    const auto code = quantize_code(v, scale, bits, RoundingMode::kNearest);
    const float deq = dequantize_code(code, scale, bits);
    if (std::abs(code) < (1 << (bits - 1)) - 1) {  // not saturated
      EXPECT_LE(std::abs(deq - to_bf16(v)), step / 2.0f + 1e-9f) << v;
    }
  }
}

TEST(DequantizeCode, ZeroCodeIsZero) {
  EXPECT_EQ(dequantize_code(0, 5, 4), 0.0f);
}

TEST(DequantizeCode, PowerOfTwoScaling) {
  EXPECT_EQ(dequantize_code(3, 0, 4), 0.75f);
  EXPECT_EQ(dequantize_code(3, 4, 4), 12.0f);
  EXPECT_EQ(dequantize_code(-5, 2, 4), -5.0f);
}

TEST(QuantizeCode, NanBecomesZero) {
  EXPECT_EQ(quantize_code(std::numeric_limits<float>::quiet_NaN(), 0, 4,
                          RoundingMode::kNearest),
            0);
}

TEST(QuantizeCode, InfinitySaturates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(quantize_code(inf, 0, 4, RoundingMode::kNearest), 7);
  EXPECT_EQ(quantize_code(-inf, 0, 4, RoundingMode::kNearest), -7);
}

TEST(Bf16ExponentOf, InfNanClampToMaxFinite) {
  EXPECT_EQ(bf16_exponent_of(std::numeric_limits<float>::infinity()), 127);
  EXPECT_EQ(bf16_exponent_of(std::numeric_limits<float>::quiet_NaN()), 127);
}

TEST(QuantizedTensorStorage, MatchesFormatAccounting) {
  QuantizedTensor qt;
  qt.format = BlockFormat{128, 4, 4};
  qt.count = 256;
  for (int b = 0; b < 2; ++b) {
    QuantizedBlock block;
    block.codes.resize(128, 0);
    for (int n = 0; n < 4; ++n) {
      block.outliers.push_back({static_cast<std::uint16_t>(n), bfloat16{}});
    }
    qt.blocks.push_back(std::move(block));
  }
  // 8 global + 2 blocks * (4 offset + 124*4 codes + 4*(16+7) outliers).
  EXPECT_EQ(qt.storage_bits(), 8u + 2u * (4u + 124u * 4u + 4u * 23u));
}

TEST(QuantizedTensorStorage, BlockScaleAddsOffset) {
  QuantizedTensor qt;
  qt.global_scale = -10;
  QuantizedBlock block;
  block.scale_offset = 12;
  qt.blocks.push_back(block);
  EXPECT_EQ(qt.block_scale(0), 2);
}

}  // namespace
}  // namespace opal
