// Kernel-layer contract tests (common/kernels.h):
//  * dispatch honors the runtime switches and always yields usable tables;
//  * the dispatched SIMD table matches the scalar reference within
//    reduction-reorder tolerance across odd lengths, unaligned spans, and
//    tails;
//  * fused dequantize-dot kernels are BITWISE equal to decode-into-scratch
//    then plain-kernel, within each table — the guarantee the quantized
//    attend path builds on;
//  * the in-register log2/int8 decodes match KvBlockPool's scalar decode
//    exactly for every byte value;
//  * end-to-end: ServingEngine token streams agree between SIMD and
//    forced-scalar kernels, and the fused attend path matches the
//    forced-gather reference bitwise in every kv_mode without ever
//    materializing fp32 gather scratch.
#include "common/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "eval/schemes.h"
#include "llm/serving_engine.h"

namespace opal {
namespace {

// Deterministic LCG so test data is identical across runs and platforms.
std::uint64_t lcg_state = 0x9e3779b97f4a7c15ull;
float frand() {
  lcg_state = lcg_state * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<float>((lcg_state >> 33) & 0xffffff) / 0x1000000p0f *
             4.0f -
         2.0f;
}

std::vector<float> rand_vec(std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = frand();
  return v;
}

std::vector<std::int8_t> rand_codes(std::size_t n, bool log2_mode) {
  std::vector<std::int8_t> v(n);
  for (auto& c : v) {
    lcg_state = lcg_state * 6364136223846793005ull + 1442695040888963407ull;
    const auto byte = static_cast<std::uint8_t>(lcg_state >> 40);
    if (log2_mode) {
      c = static_cast<std::int8_t>(byte);  // any sign|code byte is valid
    } else {
      const int q = static_cast<int>(byte) - 128;
      c = static_cast<std::int8_t>(q == -128 ? -127 : q);  // int8 uses ±127
    }
  }
  return v;
}

// Lengths exercising the 8-wide vector body, the scalar tail (1..7), and
// both at once.
const std::size_t kLengths[] = {1, 2, 3, 5, 7, 8, 9, 13, 16,
                                17, 24, 31, 33, 64, 100, 257};

class KernelDispatch : public ::testing::Test {
 protected:
  void TearDown() override { set_force_scalar_kernels(false); }
};

TEST_F(KernelDispatch, ForceScalarSwitchPinsAndReleases) {
  set_force_scalar_kernels(true);
  EXPECT_STREQ(kernels().name, "scalar");
  set_force_scalar_kernels(false);
  if (simd_kernels() != nullptr) {
    EXPECT_STREQ(kernels().name, simd_kernels()->name);
  } else {
    EXPECT_STREQ(kernels().name, "scalar");
  }
}

TEST(Kernels, ScalarTableAlwaysAvailable) {
  const KernelOps& ops = scalar_kernels();
  EXPECT_STREQ(ops.name, "scalar");
  const auto a = rand_vec(16), b = rand_vec(16);
  double ref = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    ref += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  EXPECT_EQ(ops.dot(a.data(), b.data(), 16), static_cast<float>(ref));
}

// --- dispatched vs scalar: tolerance across lengths / alignments ------------

void expect_near_rel(float got, float want, const char* what, std::size_t n) {
  const float tol = 1e-5f * (1.0f + std::fabs(want));
  EXPECT_NEAR(got, want, tol) << what << " n=" << n;
}

TEST(KernelsSimd, DotMatchesScalarAcrossLengthsAndAlignment) {
  const KernelOps* simd = simd_kernels();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD table on this CPU";
  const KernelOps& ref = scalar_kernels();
  for (const std::size_t n : kLengths) {
    // +3 slack so the same data can be re-read at unaligned offsets.
    const auto a = rand_vec(n + 3), b = rand_vec(n + 3);
    for (const std::size_t off : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}}) {
      expect_near_rel(simd->dot(a.data() + off, b.data() + off, n),
                      ref.dot(a.data() + off, b.data() + off, n), "dot", n);
    }
  }
}

TEST(KernelsSimd, MatvecBothOrientationsMatchScalar) {
  const KernelOps* simd = simd_kernels();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD table on this CPU";
  const KernelOps& ref = scalar_kernels();
  for (const std::size_t cols : {3u, 8u, 17u, 33u}) {
    for (const std::size_t rows : {1u, 5u, 16u}) {
      const auto w = rand_vec(rows * cols);
      const auto x = rand_vec(cols), xt = rand_vec(rows);
      std::vector<float> y_simd(rows), y_ref(rows);
      simd->matvec(w.data(), rows, cols, x.data(), y_simd.data());
      ref.matvec(w.data(), rows, cols, x.data(), y_ref.data());
      for (std::size_t r = 0; r < rows; ++r) {
        expect_near_rel(y_simd[r], y_ref[r], "matvec", cols);
      }
      std::vector<float> t_simd(cols), t_ref(cols);
      simd->matvec_transposed(w.data(), rows, cols, xt.data(), t_simd.data());
      ref.matvec_transposed(w.data(), rows, cols, xt.data(), t_ref.data());
      for (std::size_t c = 0; c < cols; ++c) {
        expect_near_rel(t_simd[c], t_ref[c], "matvec_transposed", cols);
      }
    }
  }
}

TEST(KernelsSimd, AxpyAndScaleMatchScalar) {
  const KernelOps* simd = simd_kernels();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD table on this CPU";
  const KernelOps& ref = scalar_kernels();
  for (const std::size_t n : kLengths) {
    const auto x = rand_vec(n);
    auto y_simd = rand_vec(n);
    auto y_ref = y_simd;
    auto y1_simd = y_simd;
    auto y1_ref = y_simd;
    // General a: SIMD fuses the multiply-add (one rounding) where the
    // scalar reference rounds twice, so the match is tolerance-level...
    simd->axpy(0.37f, x.data(), y_simd.data(), n);
    ref.axpy(0.37f, x.data(), y_ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      expect_near_rel(y_simd[i], y_ref[i], "axpy", n);
    }
    // ...but a == 1.0 (the residual-add case the model layers use) and
    // scale (a single multiply per lane) are exact in every table.
    simd->axpy(1.0f, x.data(), y1_simd.data(), n);
    ref.axpy(1.0f, x.data(), y1_ref.data(), n);
    EXPECT_EQ(y1_simd, y1_ref) << "axpy(1.0) n=" << n;
    simd->scale(1.73f, y1_simd.data(), n);
    ref.scale(1.73f, y1_ref.data(), n);
    EXPECT_EQ(y1_simd, y1_ref) << "scale n=" << n;
  }
}

TEST(KernelsSimd, AttendPrimitivesMatchScalar) {
  const KernelOps* simd = simd_kernels();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD table on this CPU";
  const KernelOps& ref = scalar_kernels();
  const std::size_t rows = 9, stride = 24, d_head = 20;  // d_head % 8 != 0
  const auto q = rand_vec(d_head);
  const auto kv = rand_vec(rows * stride);
  const auto w = rand_vec(rows);
  std::vector<float> s_simd(rows), s_ref(rows);
  simd->attend_scores(q.data(), kv.data(), rows, stride, d_head, 0.25f,
                      s_simd.data());
  ref.attend_scores(q.data(), kv.data(), rows, stride, d_head, 0.25f,
                    s_ref.data());
  for (std::size_t r = 0; r < rows; ++r) {
    expect_near_rel(s_simd[r], s_ref[r], "attend_scores", d_head);
  }
  std::vector<float> z_simd(d_head, 0.0f), z_ref(d_head, 0.0f);
  simd->attend_accum(w.data(), kv.data(), rows, stride, d_head,
                     z_simd.data());
  ref.attend_accum(w.data(), kv.data(), rows, stride, d_head, z_ref.data());
  for (std::size_t c = 0; c < d_head; ++c) {
    expect_near_rel(z_simd[c], z_ref[c], "attend_accum", rows);
  }
}

// --- fused == decode-then-plain, bitwise, per table -------------------------

void check_fused_bitwise(const KernelOps& ops) {
  for (const std::size_t n : kLengths) {
    const auto a = rand_vec(n);
    const auto i8 = rand_codes(n, false);
    const auto lg = rand_codes(n, true);
    const float s = 0.0123f;
    const int exponent = 3;

    std::vector<float> dec(n);
    for (std::size_t i = 0; i < n; ++i) {
      dec[i] = static_cast<float>(i8[i]) * s;
    }
    EXPECT_EQ(ops.dequant_dot_int8(a.data(), i8.data(), n, s),
              ops.dot(a.data(), dec.data(), n))
        << ops.name << " int8 n=" << n;

    for (std::size_t i = 0; i < n; ++i) {
      dec[i] = kv_decode_log2(lg[i], exponent);
    }
    EXPECT_EQ(ops.dequant_dot_log2(a.data(), lg.data(), n, exponent),
              ops.dot(a.data(), dec.data(), n))
        << ops.name << " log2 n=" << n;
  }
  // Strided score/accum forms, d_head with a tail.
  const std::size_t rows = 7, stride = 24, d_head = 19;
  const auto q = rand_vec(d_head);
  const auto w = rand_vec(rows);
  const auto k8 = rand_codes(rows * stride, false);
  const auto klg = rand_codes(rows * stride, true);
  const float s = 0.004f;
  const int exponent = -2;
  std::vector<float> kdec(rows * stride), got(rows), want(rows);

  for (std::size_t i = 0; i < kdec.size(); ++i) {
    kdec[i] = static_cast<float>(k8[i]) * s;
  }
  ops.dequant_scores_int8(q.data(), k8.data(), rows, stride, d_head, s, 0.5f,
                          got.data());
  ops.attend_scores(q.data(), kdec.data(), rows, stride, d_head, 0.5f,
                    want.data());
  EXPECT_EQ(got, want) << ops.name << " dequant_scores_int8";

  std::vector<float> z_got(d_head, 0.0f), z_want(d_head, 0.0f);
  ops.dequant_accum_int8(w.data(), k8.data(), rows, stride, d_head, s,
                         z_got.data());
  ops.attend_accum(w.data(), kdec.data(), rows, stride, d_head,
                   z_want.data());
  EXPECT_EQ(z_got, z_want) << ops.name << " dequant_accum_int8";

  for (std::size_t i = 0; i < kdec.size(); ++i) {
    kdec[i] = kv_decode_log2(klg[i], exponent);
  }
  ops.dequant_scores_log2(q.data(), klg.data(), rows, stride, d_head,
                          exponent, 0.5f, got.data());
  ops.attend_scores(q.data(), kdec.data(), rows, stride, d_head, 0.5f,
                    want.data());
  EXPECT_EQ(got, want) << ops.name << " dequant_scores_log2";

  std::fill(z_got.begin(), z_got.end(), 0.0f);
  std::fill(z_want.begin(), z_want.end(), 0.0f);
  ops.dequant_accum_log2(w.data(), klg.data(), rows, stride, d_head,
                         exponent, z_got.data());
  ops.attend_accum(w.data(), kdec.data(), rows, stride, d_head,
                   z_want.data());
  EXPECT_EQ(z_got, z_want) << ops.name << " dequant_accum_log2";
}

TEST(KernelsFused, ScalarFusedEqualsGatherThenDotBitwise) {
  check_fused_bitwise(scalar_kernels());
}

TEST(KernelsFused, SimdFusedEqualsGatherThenDotBitwise) {
  const KernelOps* simd = simd_kernels();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD table on this CPU";
  check_fused_bitwise(*simd);
}

// --- in-register decodes vs the scalar decode, every byte value -------------

TEST(KernelsFused, SimdLog2DecodeExactForAllByteValues) {
  const KernelOps* simd = simd_kernels();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD table on this CPU";
  // One-hot probes through the fused dot: with a = e_i the dot returns
  // decode(codes[i]) exactly (single product in double, cast once).
  // Exponents cover normals, deep denormals (exponent - 127 down to -137),
  // and the flush-to-zero region.
  for (const int exponent : {-10, -3, 0, 7, 40}) {
    for (int b = 0; b < 256; ++b) {
      std::vector<std::int8_t> codes(8, static_cast<std::int8_t>(b));
      std::vector<float> a(8, 0.0f);
      a[3] = 1.0f;  // lands in the 8-wide vector body, not the tail
      const float got =
          simd->dequant_dot_log2(a.data(), codes.data(), 8, exponent);
      const float want = kv_decode_log2(static_cast<std::int8_t>(b), exponent);
      EXPECT_EQ(got, want) << "byte=" << b << " exponent=" << exponent;
    }
  }
}

TEST(KernelsFused, SimdInt8DecodeExactForAllCodes) {
  const KernelOps* simd = simd_kernels();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD table on this CPU";
  for (const float s : {1.0f, 0.0371f, 3.25e-4f}) {
    for (int c = -127; c <= 127; ++c) {
      std::vector<std::int8_t> codes(8, static_cast<std::int8_t>(c));
      std::vector<float> a(8, 0.0f);
      a[5] = 1.0f;
      const float got = simd->dequant_dot_int8(a.data(), codes.data(), 8, s);
      const float want = static_cast<float>(c) * s;
      EXPECT_EQ(got, want) << "code=" << c << " s=" << s;
    }
  }
}

// --- end-to-end -------------------------------------------------------------

class KernelsEndToEnd : public ::testing::Test {
 protected:
  void TearDown() override {
    set_force_scalar_kernels(false);
    set_force_gather_attend(false);
  }

  static const SyntheticModel& tiny_model() {
    static const SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 2, 64),
                                      42);
    return model;
  }

  static std::vector<Request> requests() {
    return {
        Request{{3, 1, 4, 1, 5}, 8},
        Request{{2, 7}, 10},
        Request{{9, 2, 6, 5, 3, 5, 8}, 5},
    };
  }

  static std::vector<std::vector<std::size_t>> serve_tokens(
      const std::shared_ptr<const PreparedModel>& model) {
    ServingConfig scfg;
    scfg.max_batch = 3;
    ServingEngine engine(model, scfg);
    std::vector<RequestId> ids;
    for (const auto& req : requests()) ids.push_back(engine.submit(req));
    engine.run();
    std::vector<std::vector<std::size_t>> out;
    for (const auto id : ids) out.push_back(engine.result(id).tokens);
    return out;
  }
};

TEST_F(KernelsEndToEnd, ServingTokensMatchForcedScalarInEveryKvMode) {
  if (simd_kernels() == nullptr) {
    GTEST_SKIP() << "no SIMD table on this CPU";
  }
  for (const KvQuantMode mode :
       {KvQuantMode::kFp32, KvQuantMode::kInt8, KvQuantMode::kLog2}) {
    EngineConfig cfg;
    cfg.max_seq_len = 32;
    cfg.kv_block_size = 4;
    cfg.kv_mode = mode;
    auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
    set_force_scalar_kernels(false);
    const auto simd_tokens = serve_tokens(model);
    set_force_scalar_kernels(true);
    const auto scalar_tokens = serve_tokens(model);
    EXPECT_EQ(simd_tokens, scalar_tokens) << to_string(mode);
  }
}

TEST_F(KernelsEndToEnd, FusedAttendMatchesForcedGatherBitwise) {
  // The engine-wide hook pins the pre-fusion reference; within one kernel
  // table the fused path must reproduce it bit for bit, in and out of
  // chunked prefill, while never materializing the fp32 gather scratch.
  for (const KvQuantMode mode : {KvQuantMode::kInt8, KvQuantMode::kLog2}) {
    EngineConfig cfg;
    cfg.max_seq_len = 48;
    cfg.kv_block_size = 4;
    cfg.kv_mode = mode;
    auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
    auto pool = model->make_kv_pool(2.0);
    SequenceState fused = model->make_sequence(pool);
    SequenceState gathered = model->make_sequence(pool);

    std::vector<std::size_t> prompt;
    for (std::size_t i = 0; i < 11; ++i) prompt.push_back((i * 29 + 5) % 64);

    model->prefill_chunk(fused, prompt);
    for (std::size_t i = 0; i < 9; ++i) model->step(fused, (i * 7) % 64);
    EXPECT_EQ(fused.gather_count(), 0u) << to_string(mode);

    set_force_gather_attend(true);
    model->prefill_chunk(gathered, prompt);
    for (std::size_t i = 0; i < 9; ++i) model->step(gathered, (i * 7) % 64);
    set_force_gather_attend(false);
    EXPECT_GT(gathered.gather_count(), 0u) << to_string(mode);

    const auto a = fused.logits();
    const auto b = gathered.logits();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << to_string(mode) << " logit " << i;
    }
  }
}

TEST_F(KernelsEndToEnd, PerSequenceForceGatherAlsoMatchesFused) {
  EngineConfig cfg;
  cfg.max_seq_len = 32;
  cfg.kv_block_size = 8;
  cfg.kv_mode = KvQuantMode::kInt8;
  auto model = std::make_shared<const PreparedModel>(tiny_model(), cfg);
  auto pool = model->make_kv_pool(2.0);
  SequenceState fused = model->make_sequence(pool);
  SequenceState gathered = model->make_sequence(pool);
  gathered.set_force_gather(true);
  for (std::size_t i = 0; i < 13; ++i) {
    model->step(fused, (i * 11 + 2) % 64);
    model->step(gathered, (i * 11 + 2) % 64);
  }
  EXPECT_EQ(fused.gather_count(), 0u);
  EXPECT_GT(gathered.gather_count(), 0u);
  const auto a = fused.logits();
  const auto b = gathered.logits();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "logit " << i;
  }
}

}  // namespace
}  // namespace opal
