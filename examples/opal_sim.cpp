// opal_sim: command-line front end to the device-level simulator.
//
//   opal_sim [model] [device] [seq_len] [n_tokens]
//     model:   7b | 13b | 70b | opt6.7b | opt13b      (default 70b)
//     device:  bf16 | owq | opal47 | opal35           (default opal47)
//     seq_len: starting KV length                     (default 1024)
//     n_tokens: tokens to decode (averaged)           (default 16)
//
// Prints the per-token latency/energy report plus the device's core area,
// buffers, and Table-3-style breakdown — the numbers a deployment study
// would start from.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "accel/device.h"

namespace {

opal::ModelConfig parse_model(const std::string& name) {
  if (name == "7b") return opal::llama2_7b();
  if (name == "13b") return opal::llama2_13b();
  if (name == "70b") return opal::llama2_70b();
  if (name == "opt6.7b") return opal::opt_6_7b();
  if (name == "opt13b") return opal::opt_13b();
  std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
  std::exit(2);
}

opal::DeviceConfig parse_device(const std::string& name) {
  if (name == "bf16") return opal::make_bf16_device();
  if (name == "owq") return opal::make_owq_device(4);
  if (name == "opal47") return opal::make_opal_device(4, 7, 4);
  if (name == "opal35") return opal::make_opal_device(3, 5, 3);
  std::fprintf(stderr, "unknown device '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opal;
  const auto model = parse_model(argc > 1 ? argv[1] : "70b");
  const auto device = parse_device(argc > 2 ? argv[2] : "opal47");
  const std::size_t seq = argc > 3
                              ? static_cast<std::size_t>(std::atol(argv[3]))
                              : 1024;
  const std::size_t n_tokens =
      argc > 4 ? static_cast<std::size_t>(std::atol(argv[4])) : 16;

  std::printf("model  : %s (%zu layers, d_model %zu, d_ffn %zu, ~%.1fB "
              "params)\n",
              model.name.c_str(), model.n_layers, model.d_model, model.d_ffn,
              static_cast<double>(model.param_count()) / 1e9);
  std::printf("device : %s  (weight %db, act %d/%db, %zu core(s))\n",
              device.name.c_str(), device.weight_bits, device.act.low,
              device.act.high, device.n_cores);
  std::printf("buffers: weight %zu KB, activation %zu KB  |  core area "
              "%.3f mm^2\n",
              device.weight_buffer_bytes() / 1024,
              device.act_buffer_bytes() / 1024, device_core_area_mm2(device));

  const auto report = simulate_generation(device, model, seq, n_tokens);
  std::printf("\nper-token averages over %zu decode steps from KV length "
              "%zu:\n", n_tokens, seq);
  std::printf("  latency           %10.3f s\n", report.latency_s);
  std::printf("  core energy       %10.3f J\n", report.core_energy_j);
  std::printf("  memory access     %10.3f J\n", report.mem_access_j);
  std::printf("  weight-mem leak   %10.3f J\n", report.weight_leak_j);
  std::printf("  act-mem leak      %10.3f J\n", report.act_leak_j);
  std::printf("  total             %10.3f J\n", report.total_j());
  std::printf("  MACs              %zu (%.1f%% on INT units)\n",
              report.total_macs, 100.0 * report.int_mac_fraction);

  // Bottleneck analysis: the three slowest ops of one token.
  auto trace = trace_token(device, model, seq);
  std::partial_sort(trace.begin(), trace.begin() + std::min<std::size_t>(
                                       3, trace.size()),
                    trace.end(),
                    [](const OpTraceEntry& a, const OpTraceEntry& b) {
                      return a.latency_s > b.latency_s;
                    });
  std::printf("\nslowest ops of one token:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(3, trace.size()); ++i) {
    const auto& e = trace[i];
    std::printf("  %-18s %8.2f ms  %s\n", e.name.c_str(),
                e.latency_s * 1e3, e.dram_bound ? "(DRAM-bound)"
                                                : "(compute-bound)");
  }
  return 0;
}
