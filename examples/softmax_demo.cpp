// Log2 softmax demo: shows the Eq. (3) integer datapath on a single
// attention row — exponent subtraction, mantissa comparison, the resulting
// power-of-two attention map, and the shift-and-accumulate Attn.V.
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/bfloat16.h"
#include "common/rng.h"
#include "softmax/softmax.h"

int main() {
  using namespace opal;

  std::vector<float> scores = {2.1f, -0.3f, 1.4f, 0.2f, -1.8f, 0.9f};
  std::printf("attention scores:");
  for (const float s : scores) std::printf(" %6.2f", s);
  std::printf("\n\n");

  std::vector<float> probs(scores.size());
  softmax_reference(scores, probs);
  const auto codes = log2_softmax_unit(scores, Log2SoftmaxConfig{7});
  std::vector<float> weights(scores.size());
  attention_weights_from_codes(codes, weights);

  std::printf("%6s %12s %10s %14s\n", "score", "softmax", "code",
              "2^-code");
  for (std::size_t i = 0; i < scores.size(); ++i) {
    std::printf("%6.2f %12.5f %10u %14.5f\n", scores[i], probs[i],
                codes[i], weights[i]);
  }
  std::printf("sum of 2^-code weights: %.4f (exact softmax sums to 1)\n\n",
              std::accumulate(weights.begin(), weights.end(), 0.0));

  // Attn.V as shift-and-accumulate against a small V matrix.
  Rng rng = make_rng(5);
  Matrix v(scores.size(), 4);
  fill_gaussian(rng, v.flat(), 0.0f, 1.0f);
  std::vector<float> z_exact(4), z_shift(4);
  reference_attn_v(probs, v, z_exact);
  shift_accumulate_attn_v(codes, v, z_shift);
  std::printf("Attn.V  exact:  ");
  for (const float x : z_exact) std::printf(" %8.4f", x);
  std::printf("\nAttn.V  shifted:");
  for (const float x : z_shift) std::printf(" %8.4f", x);
  std::printf("\n\nThe shifted result needs no multipliers: every V row is "
              "shifted right by its attention code and summed (Fig 5(e)).\n");
  return 0;
}
