// End-to-end generation demo: builds a scaled-down Llama2-style model,
// runs BF16 and MX-OPAL W4A4/7 engines side by side on the same prompt,
// and reports the perplexity gap plus what the OPAL accelerator would
// spend per token on the full-scale model.
#include <cstdio>

#include "accel/device.h"
#include "eval/perplexity.h"
#include "eval/schemes.h"

int main() {
  using namespace opal;

  // Build and calibrate a small model with Llama2-7B's aspect ratios.
  SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 3, 64), 7);
  calibrate_logit_scale(model, 24, 8);
  const auto calibration = calibrate_model(model, 48, 9);

  // Teacher (BF16) generates a stream; both engines are scored on it.
  EngineConfig teacher_cfg;
  teacher_cfg.max_seq_len = 130;
  InferenceEngine teacher(model, teacher_cfg);
  const auto tokens = generate_stream(teacher, 128, 10);

  std::printf("generated %zu tokens with the BF16 teacher; first ten:",
              tokens.size());
  for (std::size_t t = 0; t < 10; ++t) std::printf(" %zu", tokens[t]);
  std::printf("\n\n");

  auto opal_cfg = scheme_mx_opal(4, 4, 7);
  opal_cfg.max_seq_len = 130;
  InferenceEngine opal_engine(model, opal_cfg, &calibration);

  const double ppl_teacher = evaluate_perplexity(teacher, tokens);
  const double ppl_opal = evaluate_perplexity(opal_engine, tokens);
  std::printf("perplexity: BF16 %.3f vs %s %.3f (delta %+.3f)\n",
              ppl_teacher, opal_cfg.label().c_str(), ppl_opal,
              ppl_opal - ppl_teacher);
  std::printf("weight storage: %.2f MB -> %.2f MB (%.1f%% bf16 columns)\n",
              static_cast<double>(teacher.weight_storage_bits()) / 8e6,
              static_cast<double>(opal_engine.weight_storage_bits()) / 8e6,
              100.0 * opal_engine.fp_weight_fraction());

  // What would this cost on silicon at full scale?
  std::printf("\nfull-scale Llama2-7B per-token on the modeled devices:\n");
  for (const auto& dev :
       {make_bf16_device(), make_owq_device(4), make_opal_device(4, 7, 4)}) {
    const auto report = simulate_token(dev, llama2_7b(), 512);
    std::printf("  %-9s %7.3f J/token, %6.3f s/token\n",
                report.device.c_str(), report.total_j(), report.latency_s);
  }
  return 0;
}
