// End-to-end generation demo on the batched paged serving path: builds a
// scaled-down Llama2-style model, generates greedy continuations for a
// batch of prompts through a ServingEngine (shared PreparedModel, paged KV
// blocks, prefix cache reusing the prompts' common system prefix), scores
// the BF16 teacher against MX-OPAL W4A4/7 on those streams with the
// continuously-batched perplexity evaluator, and reports what the OPAL
// accelerator would spend per token on the full-scale model.
#include <cstdio>
#include <vector>

#include "accel/device.h"
#include "eval/perplexity.h"
#include "eval/schemes.h"
#include "llm/serving_engine.h"

int main() {
  using namespace opal;

  // Build and calibrate a small model with Llama2-7B's aspect ratios.
  SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 3, 64), 7);
  calibrate_logit_scale(model, 24, 8);
  const auto calibration = calibrate_model(model, 48, 9);

  // The BF16 teacher is prepared once and shared by every sequence; all
  // generation runs through the batched, paged ServingEngine.
  EngineConfig teacher_cfg;
  teacher_cfg.max_seq_len = 64;
  teacher_cfg.kv_block_size = 8;
  auto teacher = std::make_shared<const PreparedModel>(model, teacher_cfg);

  ServingConfig serving_cfg;
  serving_cfg.max_batch = 4;
  serving_cfg.enable_prefix_cache = true;
  // Prompts prefill in whole 8-token chunks (one KV-prefix pass per layer
  // per chunk instead of per token) — bitwise identical to token-by-token.
  serving_cfg.prefill_chunk_tokens = 8;
  ServingEngine engine(teacher, serving_cfg);

  // Four prompts sharing a 16-token system prefix (two KV block columns):
  // a pilot request populates the prefix cache, the rest reuse its blocks.
  std::vector<std::size_t> prefix;
  for (std::size_t i = 0; i < 16; ++i) prefix.push_back((i * 5 + 2) % 64);
  const std::size_t tails[4][2] = {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  std::vector<Request> requests;
  for (const auto& tail : tails) {
    Request req;
    req.prompt = prefix;
    req.prompt.insert(req.prompt.end(), std::begin(tail), std::end(tail));
    req.max_new_tokens = 24;
    requests.push_back(std::move(req));
  }

  std::vector<RequestId> ids;
  ids.push_back(engine.submit(requests[0]));
  engine.run();  // pilot finishes and indexes the shared prefix
  for (std::size_t r = 1; r < requests.size(); ++r) {
    ids.push_back(engine.submit(requests[r]));
  }
  engine.run();

  std::vector<std::vector<std::size_t>> streams;
  for (const auto id : ids) streams.push_back(engine.result(id).tokens);
  const auto stats = engine.stats();
  std::printf("generated %zu streams of %zu tokens on the batched paged "
              "path; prefix cache served %zu of %zu admissions (%zu "
              "prefill decodes skipped)\n",
              streams.size(), streams[0].size(), stats.prefix_hits,
              stats.prefix_hits + stats.prefix_misses,
              stats.prefix_hit_tokens);
  std::printf("first ten of stream 0:");
  for (std::size_t t = 0; t < 10; ++t) std::printf(" %zu", streams[0][t]);
  std::printf("\n\n");

  // The same serving path drives seeded sampling (the generation workload
  // beyond greedy scoring): a temperature/top-k/top-p request submitted
  // twice yields the identical stream, and the batch-of-1 facade's
  // generate() — same sampler subsystem, dense KV — matches it bitwise
  // (sampling is invariant to batching and scheduling; see sampler.h).
  Request sampled;
  sampled.prompt = requests[0].prompt;
  sampled.max_new_tokens = 24;
  sampled.sampling.policy = SamplePolicy::kTopP;
  sampled.sampling.temperature = 1.4f;
  sampled.sampling.top_k = 40;
  sampled.sampling.top_p = 0.98f;
  sampled.sampling.seed = 11;
  const RequestId s1 = engine.submit(sampled);
  const RequestId s2 = engine.submit(sampled);
  engine.run();
  const auto sampled_a = engine.result(s1).tokens;
  const auto sampled_b = engine.result(s2).tokens;
  InferenceEngine facade(teacher);
  const auto facade_gen =
      facade.generate(sampled.prompt, sampled.max_new_tokens,
                      sampled.sampling);
  std::size_t diverged = 0;
  for (std::size_t t = sampled.prompt.size(); t < sampled_a.size(); ++t) {
    if (sampled_a[t] != streams[0][t]) ++diverged;
  }
  std::printf("seeded %s sampling (t=%.1f, k=%zu, p=%.2f, seed=%llu): "
              "resubmit identical: %s; facade generate() identical: %s; "
              "%zu of %zu sampled tokens differ from greedy\n\n",
              to_string(sampled.sampling.policy).c_str(),
              static_cast<double>(sampled.sampling.temperature),
              sampled.sampling.top_k,
              static_cast<double>(sampled.sampling.top_p),
              static_cast<unsigned long long>(sampled.sampling.seed),
              sampled_a == sampled_b ? "yes" : "NO (ERROR)",
              facade_gen.tokens == sampled_a ? "yes" : "NO (ERROR)",
              diverged, sampled_a.size() - sampled.prompt.size());
  if (sampled_a != sampled_b || facade_gen.tokens != sampled_a) {
    std::printf("ERROR: seeded sampling determinism/parity violated\n");
    return 1;
  }

  // Score teacher vs MX-OPAL on the generated streams, both through the
  // continuously-batched evaluator (one ServingEngine pass per scheme).
  auto opal_cfg = scheme_mx_opal(4, 4, 7);
  opal_cfg.max_seq_len = 64;
  const PreparedModel opal_prepared(model, opal_cfg, &calibration);

  const auto ppl_teacher = evaluate_perplexity_batched(*teacher, streams);
  const auto ppl_opal = evaluate_perplexity_batched(opal_prepared, streams);
  double mean_teacher = 0.0, mean_opal = 0.0;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    mean_teacher += ppl_teacher[s] / static_cast<double>(streams.size());
    mean_opal += ppl_opal[s] / static_cast<double>(streams.size());
  }
  std::printf("perplexity (mean over %zu streams): BF16 %.3f vs %s %.3f "
              "(delta %+.3f)\n",
              streams.size(), mean_teacher, opal_cfg.label().c_str(),
              mean_opal, mean_opal - mean_teacher);
  std::printf("weight storage: %.2f MB -> %.2f MB (%.1f%% bf16 columns)\n",
              static_cast<double>(teacher->weight_storage_bits()) / 8e6,
              static_cast<double>(opal_prepared.weight_storage_bits()) / 8e6,
              100.0 * opal_prepared.fp_weight_fraction());

  // What would this cost on silicon at full scale?
  std::printf("\nfull-scale Llama2-7B per-token on the modeled devices:\n");
  for (const auto& dev :
       {make_bf16_device(), make_owq_device(4), make_opal_device(4, 7, 4)}) {
    const auto report = simulate_token(dev, llama2_7b(), 512);
    std::printf("  %-9s %7.3f J/token, %6.3f s/token\n",
                report.device.c_str(), report.total_j(), report.latency_s);
  }
  return 0;
}
