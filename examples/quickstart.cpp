// Quickstart: quantize an activation tensor with MX-OPAL and compare it
// against MinMax and MXINT.
//
//   $ ./quickstart
//
// Walks through the public API: sampling LLM-like activations, building
// quantizers, measuring error, and inspecting the encoded form.
#include <cstdio>
#include <vector>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "quant/minmax.h"
#include "quant/mx_opal.h"
#include "quant/mxint.h"

int main() {
  using namespace opal;

  // 1. Sample a 4096-element activation vector with persistent outlier
  //    channels, the distribution shape LLMs produce.
  ActivationModel activations(/*seed=*/1, /*dim=*/4096,
                              /*outlier_fraction=*/0.005f);
  std::vector<float> x(4096);
  activations.sample(x);

  // 2. Build the three quantizers the paper compares at b = 4.
  const MinMaxQuantizer minmax(/*block_size=*/128, /*bits=*/4);
  const MxIntQuantizer mxint(128, 4);
  const MxOpalQuantizer mx_opal(128, 4, /*outliers=*/4);

  // 3. Quantize-dequantize and measure the error.
  std::printf("quantizer     MSE         SQNR (dB)   storage bits/elem\n");
  std::vector<float> out(x.size());
  for (const Quantizer* q :
       {static_cast<const Quantizer*>(&minmax),
        static_cast<const Quantizer*>(&mxint),
        static_cast<const Quantizer*>(&mx_opal)}) {
    q->quantize_dequantize(x, out);
    std::printf("%-10s %10.6f %11.2f %12.2f\n", q->name().c_str(),
                mse(x, out), sqnr_db(x, out),
                static_cast<double>(q->storage_bits(x.size())) /
                    static_cast<double>(x.size()));
  }

  // 4. Inspect the encoded form MX-OPAL hands to the accelerator.
  const auto encoded = mx_opal.encode(x);
  std::printf("\nencoded: %zu blocks, global scale exponent %d\n",
              encoded.blocks.size(), encoded.global_scale);
  std::printf("block 0: scale offset %u, %zu bf16 outliers at indices",
              encoded.blocks[0].scale_offset,
              encoded.blocks[0].outliers.size());
  for (const auto& o : encoded.blocks[0].outliers) {
    std::printf(" %u", o.index);
  }
  std::printf("\nmemory overhead vs MXINT (Eq. 1): %.1f%%\n",
              100.0 * (mx_opal.memory_overhead() - 1.0));
  return 0;
}
