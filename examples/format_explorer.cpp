// Format explorer: the Fig 2 walkthrough. Takes a handful of bfloat16
// values and shows, element by element, how MXINT4 and MX-OPAL4 encode
// them — shared scales, shift amounts, underflows, and preserved outliers.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/bfloat16.h"
#include "quant/mx_opal.h"
#include "quant/mxint.h"

namespace {

void show_encoding(const char* title, const opal::QuantizedTensor& qt,
                   const std::vector<float>& values) {
  using namespace opal;
  const auto& block = qt.blocks[0];
  const int scale = qt.block_scale(0);
  std::printf("--- %s ---\n", title);
  std::printf("shared scale: 2^%d (global %d + offset %u)\n", scale,
              qt.global_scale, block.scale_offset);
  const auto decoded = decode(qt);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const bfloat16 v(values[i]);
    bool is_outlier = false;
    for (const auto& o : block.outliers) is_outlier |= o.index == i;
    const int shift = v.is_zero() ? 0 : scale - v.unbiased_exponent();
    if (is_outlier) {
      std::printf("  [%zu] %10.4f  -> preserved outlier (bfloat16, exact)\n",
                  i, static_cast<double>(values[i]));
    } else {
      std::printf("  [%zu] %10.4f  exp %4d  >> %2d  code %4d  -> %10.4f%s\n",
                  i, static_cast<double>(values[i]),
                  v.is_zero() ? 0 : v.unbiased_exponent(), shift,
                  block.codes[i], static_cast<double>(decoded[i]),
                  block.codes[i] == 0 && values[i] != 0.0f
                      ? "   (underflow!)"
                      : "");
    }
  }
  std::printf("storage: %zu bits for %zu values\n\n", qt.storage_bits(),
              values.size());
}

}  // namespace

int main() {
  using namespace opal;
  // Values patterned after Fig 2: one large outlier (exponent 3 = 130
  // biased) and a spread of smaller elements, one tiny enough to underflow.
  const std::vector<float> values = {-12.5f, 1.75f, -0.875f,
                                     2.5f,   0.02f, -1.25f};

  std::printf("=== Fig 2 walkthrough: bfloat16 -> MXINT4 vs MX-OPAL4 ===\n\n");
  std::printf("input (as bfloat16):\n");
  for (std::size_t i = 0; i < values.size(); ++i) {
    const bfloat16 v(values[i]);
    std::printf("  [%zu] %10.4f   sign %d  biased exp %3d  mantissa 0x%02x\n",
                i, static_cast<double>(values[i]), v.sign(),
                v.biased_exponent(), v.mantissa());
  }
  std::printf("\n");

  const MxIntQuantizer mxint(values.size(), 4);
  show_encoding("MXINT4 (shared scale = max exponent)", mxint.encode(values),
                values);

  const MxOpalQuantizer mx_opal(values.size(), 4, 1);
  show_encoding("MX-OPAL4 (top-1 outlier preserved, scale = 2nd exponent)",
                mx_opal.encode(values), values);

  std::printf("Note how MXINT4 wastes its grid on the outlier and pushes "
              "the small element to zero, while MX-OPAL4 stores the outlier "
              "verbatim and gives everyone else two extra octaves of "
              "resolution.\n");
  return 0;
}
