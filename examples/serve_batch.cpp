// Batched serving demo on the paged KV cache: one shared PreparedModel
// (quantized once), a ServingEngine whose block pool is deliberately sized
// to ~1/4 of the dense-cache footprint, and more requests than batch slots.
// Because sequences only hold blocks for positions actually written, the
// squeezed pool still runs a full 4-slot batch that dense per-sequence
// caches could not fit (4 dense caches need 4x the full-length footprint);
// under pressure the engine preempts the youngest sequence instead of
// failing. Every result is checked against a dense fp32 single-sequence
// decode — paged fp32 serving is bitwise identical.
//
//   quantize once -> 6 requests -> 4 slots, 1/4 memory -> drain -> verify
#include <chrono>
#include <cstdio>
#include <vector>

#include "eval/schemes.h"
#include "llm/engine.h"
#include "llm/serving_engine.h"

namespace {

void print_stats(const char* when, const opal::ServingEngine& engine) {
  const auto s = engine.stats();
  std::printf("  [%s] blocks %zu used / %zu free, %zu running, %zu queued, "
              "%zu preemptions, %zu evictions, %zu tokens decoded\n",
              when, s.blocks_in_use, s.blocks_free, s.running, s.queued,
              s.preemptions, s.evictions, s.tokens_decoded);
}

}  // namespace

int main() {
  using namespace opal;

  const auto cfg = scaled_for_eval(llama2_7b(), 128, 3, 256);
  SyntheticModel model(cfg, 7);
  calibrate_logit_scale(model, 24, 8);
  const auto calibration = calibrate_model(model, 48, 9);

  EngineConfig engine_cfg = scheme_mx_opal(4, 4, 7);
  engine_cfg.max_seq_len = 96;
  engine_cfg.kv_block_size = 8;

  const auto t_prep0 = std::chrono::steady_clock::now();
  auto prepared = std::make_shared<const PreparedModel>(model, engine_cfg,
                                                        &calibration);
  const auto t_prep1 = std::chrono::steady_clock::now();
  std::printf("PreparedModel: %s, %.1f%% fp weights, %zu KiB packed "
              "(quantized once, shared by every sequence)\n",
              prepared->config().label().c_str(),
              100.0 * prepared->fp_weight_fraction(),
              prepared->weight_storage_bits() / 8 / 1024);

  ServingConfig serving_cfg;
  serving_cfg.max_batch = 4;
  serving_cfg.n_threads = 2;
  // Dense-equivalent footprint would be max_batch full-length sequences;
  // give the pool a quarter of that and let paging absorb the difference.
  const std::size_t dense_blocks =
      serving_cfg.max_batch * prepared->kv_blocks_per_sequence();
  serving_cfg.kv_pool_blocks = dense_blocks / 4;
  ServingEngine engine(prepared, serving_cfg);
  std::printf("KV pool: %zu blocks of %zu positions (%s entries, %zu KiB) "
              "— 1/4 of the %zu-block dense-equivalent footprint\n",
              engine.kv_pool().n_blocks(), engine.kv_pool().block_size(),
              to_string(engine.kv_pool().mode()).c_str(),
              engine.kv_pool().storage_bytes() / 1024, dense_blocks);

  const std::vector<Request> requests = {
      {{11, 3, 52, 9}, 24},
      {{200, 17}, 40},
      {{5, 5, 5, 5, 5, 5, 5, 5}, 16},
      {{99}, 48},
      {{42, 120, 7, 33, 81}, 32},
      {{250, 251, 252}, 20},
  };
  std::vector<RequestId> ids;
  for (const auto& req : requests) ids.push_back(engine.submit(req));
  std::printf("\nsubmitted %zu requests into %zu batch slots "
              "(%zu decode threads)\n\n",
              requests.size(), serving_cfg.max_batch, serving_cfg.n_threads);

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t steps = 0, decoded = 0;
  while (true) {
    const std::size_t n = engine.step();
    if (n == 0) break;
    decoded += n;
    ++steps;
    if (steps % 16 == 0) print_stats("mid-serve", engine);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double serve_s = std::chrono::duration<double>(t1 - t0).count();
  print_stats("drained", engine);

  // Dense fp32 baseline: replay each request through a fresh batch-of-1
  // facade (dense KV cache) and demand bitwise-identical tokens.
  std::size_t mismatches = 0;
  std::printf("\n%-9s %-9s %7s %10s %7s  %s\n", "request", "status", "prompt",
              "generated", "total", "vs dense");
  for (std::size_t r = 0; r < ids.size(); ++r) {
    const auto result = engine.result(ids[r]);
    InferenceEngine dense(prepared);
    std::vector<std::size_t> ref = requests[r].prompt;
    const std::size_t target = ref.size() + requests[r].max_new_tokens;
    std::size_t fed = 0;
    while (fed < ref.size()) {
      const auto logits = dense.step(ref[fed]);
      ++fed;
      if (fed == ref.size() && ref.size() < target) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < logits.size(); ++i) {
          if (logits[i] > logits[best]) best = i;
        }
        ref.push_back(best);
        if (ref.size() == target) break;
      }
    }
    const bool same = ref == result.tokens;
    mismatches += same ? 0 : 1;
    std::printf("%-9zu %-9s %7zu %10zu %7zu  %s\n", r,
                to_string(result.status).c_str(), result.prompt_len,
                result.generated(), result.tokens.size(),
                same ? "identical" : "MISMATCH");
    engine.release(ids[r]);  // drop the harvested result immediately
  }

  std::printf("\nprepare: %.2fs (once)   serve: %.2fs, %zu steps, "
              "%zu token-decodes, %.1f tokens/s across the batch\n",
              std::chrono::duration<double>(t_prep1 - t_prep0).count(),
              serve_s, steps, decoded,
              static_cast<double>(decoded) / serve_s);
  if (mismatches != 0) {
    std::printf("ERROR: %zu requests diverged from the dense baseline\n",
                mismatches);
    return 1;
  }
  std::printf("all %zu results bitwise identical to the dense fp32 "
              "baseline\n", ids.size());
  return 0;
}
