// Batched serving demo: one shared PreparedModel (quantized once), a
// ServingEngine with continuous batching, and more requests than batch
// slots — sequences at different positions decode together, finished slots
// refill from the queue mid-flight, and the per-step decode fans out across
// a small thread pool.
//
//   quantize once -> submit 6 requests -> 4 slots -> drain -> report
#include <chrono>
#include <cstdio>
#include <vector>

#include "eval/schemes.h"
#include "llm/engine.h"
#include "llm/serving_engine.h"

int main() {
  using namespace opal;

  const auto cfg = scaled_for_eval(llama2_7b(), 128, 3, 256);
  SyntheticModel model(cfg, 7);
  calibrate_logit_scale(model, 24, 8);
  const auto calibration = calibrate_model(model, 48, 9);

  EngineConfig engine_cfg = scheme_mx_opal(4, 4, 7);
  engine_cfg.max_seq_len = 96;

  const auto t_prep0 = std::chrono::steady_clock::now();
  auto prepared = std::make_shared<const PreparedModel>(model, engine_cfg,
                                                        &calibration);
  const auto t_prep1 = std::chrono::steady_clock::now();
  std::printf("PreparedModel: %s, %.1f%% fp weights, %zu KiB packed "
              "(quantized once, shared by every sequence)\n",
              prepared->config().label().c_str(),
              100.0 * prepared->fp_weight_fraction(),
              prepared->weight_storage_bits() / 8 / 1024);

  ServingConfig serving_cfg;
  serving_cfg.max_batch = 4;
  serving_cfg.n_threads = 2;
  ServingEngine engine(prepared, serving_cfg);

  const std::vector<Request> requests = {
      {{11, 3, 52, 9}, 24},
      {{200, 17}, 40},
      {{5, 5, 5, 5, 5, 5, 5, 5}, 16},
      {{99}, 48},
      {{42, 120, 7, 33, 81}, 32},
      {{250, 251, 252}, 20},
  };
  std::vector<RequestId> ids;
  for (const auto& req : requests) ids.push_back(engine.submit(req));
  std::printf("\nsubmitted %zu requests into %zu batch slots "
              "(%zu decode threads)\n\n",
              requests.size(), serving_cfg.max_batch, serving_cfg.n_threads);

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t steps = 0, decoded = 0;
  while (true) {
    const std::size_t n = engine.step();
    if (n == 0) break;
    decoded += n;
    ++steps;
    if (steps % 16 == 0) {
      std::printf("  step %3zu: %zu running, %zu queued\n", steps,
                  engine.running(), engine.queued());
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double serve_s = std::chrono::duration<double>(t1 - t0).count();

  std::printf("\n%-9s %-9s %7s %10s %7s\n", "request", "status", "prompt",
              "generated", "total");
  for (std::size_t r = 0; r < ids.size(); ++r) {
    const auto& result = engine.result(ids[r]);
    std::printf("%-9zu %-9s %7zu %10zu %7zu\n", r,
                to_string(result.status).c_str(), result.prompt_len,
                result.generated(), result.tokens.size());
  }

  std::printf("\nprepare: %.2fs (once)   serve: %.2fs, %zu steps, "
              "%zu token-decodes, %.1f tokens/s across the batch\n",
              std::chrono::duration<double>(t_prep1 - t_prep0).count(),
              serve_s, steps, decoded,
              static_cast<double>(decoded) / serve_s);
  return 0;
}
