// Batched serving demo on the paged KV cache with prefix caching and a
// priority scheduler over chunked prefill: one shared PreparedModel
// (quantized once), a ServingEngine whose block pool is deliberately sized
// to ~1/4 of the dense-cache footprint, and more requests than batch slots
// — all sharing a 16-token system prefix, half of them marked interactive
// (priority 1) and half batch (priority 0). Prompts prefill in 8-token
// chunks (bitwise identical to token-by-token; see scheduler.h), the
// scheduler admits the interactive class first and preempts the batch
// class first under pool pressure. The same request set is served twice
// through one engine: round 1 runs cold and populates the radix prefix
// index as sequences retire; round 2 finds its prompts' block-aligned
// prefixes already cached and skips that prefill entirely. Under pool
// pressure the engine reclaims unreferenced cache entries first; every
// result in both rounds is checked bitwise against a dense fp32
// single-sequence decode — scheduling policy and chunking change latency
// ordering only, never tokens.
//
//   quantize once -> 6 shared-prefix requests (2 priority classes)
//   -> 4 slots, 1/4 memory, chunked prefill -> round 1 (cold)
//   -> round 2 (warm prefix cache) -> verify both
//   -> sampled round (seeded, streamed) -> traced round (OPAL_TRACE=1,
//      balanced event stream, Chrome trace on disk, results unchanged)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "eval/schemes.h"
#include "llm/engine.h"
#include "llm/scheduler.h"
#include "llm/serving_engine.h"

namespace {

void print_stats(const char* when, const opal::ServingEngine& engine) {
  const auto s = engine.stats();
  std::printf("  [%s] blocks %zu used / %zu free (peak %zu, reclaimable "
              "%zu), %zu running, %zu queued, %zu preemptions, %zu "
              "evictions, %zu tokens decoded\n",
              when, s.blocks_in_use, s.blocks_free, s.blocks_peak,
              s.blocks_reclaimable, s.running, s.queued, s.preemptions,
              s.evictions, s.tokens_decoded);
  std::printf("  [%s] prefix cache: %zu hits / %zu misses, %zu prefill "
              "decodes skipped, %zu blocks cached, %zu reclaimed\n",
              when, s.prefix_hits, s.prefix_misses, s.prefix_hit_tokens,
              s.prefix_cached_blocks, s.prefix_reclaimed_blocks);
  for (const auto& [prio, p] : s.by_priority) {
    std::printf("  [%s] priority %d: %zu served tokens, mean queue-wait "
                "%.1f steps, mean ttft %.1f steps\n",
                when, prio, p.tokens_served,
                static_cast<double>(p.queue_wait_steps) /
                    static_cast<double>(p.first_decodes > 0 ? p.first_decodes
                                                            : 1),
                static_cast<double>(p.ttft_steps) /
                    static_cast<double>(p.first_tokens > 0 ? p.first_tokens
                                                           : 1));
  }
  std::printf("  [%s] finished by reason:", when);
  for (const auto& [reason, count] : s.finish_reasons) {
    std::printf(" %s=%zu", opal::to_string(reason).c_str(), count);
  }
  std::printf("\n");
}

/// Serves `requests`, drains the engine, and checks every result bitwise
/// against a dense fp32 single-sequence decode. Returns the mismatches.
std::size_t serve_round(
    opal::ServingEngine& engine,
    const std::shared_ptr<const opal::PreparedModel>& prepared,
    const std::vector<opal::Request>& requests, const char* label) {
  using namespace opal;
  std::vector<RequestId> ids;
  for (const auto& req : requests) ids.push_back(engine.submit(req));

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t steps = 0, decoded = 0;
  while (true) {
    const std::size_t n = engine.step();
    if (n == 0) break;
    decoded += n;
    ++steps;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double serve_s = std::chrono::duration<double>(t1 - t0).count();
  print_stats(label, engine);

  std::size_t mismatches = 0;
  for (std::size_t r = 0; r < ids.size(); ++r) {
    const auto result = engine.result(ids[r]);
    InferenceEngine dense(prepared);
    std::vector<std::size_t> ref = requests[r].prompt;
    const std::size_t target = ref.size() + requests[r].max_new_tokens;
    std::size_t fed = 0;
    while (fed < ref.size()) {
      const auto logits = dense.step(ref[fed]);
      ++fed;
      if (fed == ref.size() && ref.size() < target) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < logits.size(); ++i) {
          if (logits[i] > logits[best]) best = i;
        }
        ref.push_back(best);
        if (ref.size() == target) break;
      }
    }
    if (ref != result.tokens) ++mismatches;
    engine.release(ids[r]);  // drop the harvested result immediately
  }
  std::printf("  [%s] %zu requests in %.2fs, %zu steps, %zu token-decodes, "
              "%.1f tokens/s, %zu dense-baseline mismatches\n\n",
              label, ids.size(), serve_s, steps, decoded,
              static_cast<double>(decoded) / serve_s, mismatches);
  return mismatches;
}

}  // namespace

int main() {
  using namespace opal;

  const auto cfg = scaled_for_eval(llama2_7b(), 128, 3, 256);
  SyntheticModel model(cfg, 7);
  calibrate_logit_scale(model, 24, 8);
  const auto calibration = calibrate_model(model, 48, 9);

  EngineConfig engine_cfg = scheme_mx_opal(4, 4, 7);
  engine_cfg.max_seq_len = 96;
  engine_cfg.kv_block_size = 8;

  const auto t_prep0 = std::chrono::steady_clock::now();
  auto prepared = std::make_shared<const PreparedModel>(model, engine_cfg,
                                                        &calibration);
  const auto t_prep1 = std::chrono::steady_clock::now();
  std::printf("PreparedModel: %s, %.1f%% fp weights, %zu KiB packed "
              "(quantized once, shared by every sequence; prepare %.2fs)\n",
              prepared->config().label().c_str(),
              100.0 * prepared->fp_weight_fraction(),
              prepared->weight_storage_bits() / 8 / 1024,
              std::chrono::duration<double>(t_prep1 - t_prep0).count());

  ServingConfig serving_cfg;
  serving_cfg.max_batch = 4;
  serving_cfg.n_threads = 2;
  serving_cfg.enable_prefix_cache = true;
  // Strict-priority scheduling over 8-token prefill chunks: interactive
  // requests admit first and keep full chunks; batch-class prompts trickle
  // while interactive work is in flight. Results stay bitwise identical to
  // the FIFO token-by-token schedule — only latency ordering moves.
  serving_cfg.scheduler = std::make_shared<PriorityScheduler>();
  serving_cfg.prefill_chunk_tokens = 8;
  // Dense-equivalent footprint would be max_batch full-length sequences;
  // give the pool a quarter of that and let paging absorb the difference.
  const std::size_t dense_blocks =
      serving_cfg.max_batch * prepared->kv_blocks_per_sequence();
  serving_cfg.kv_pool_blocks = dense_blocks / 4;
  ServingEngine engine(prepared, serving_cfg);
  std::printf("KV pool: %zu blocks of %zu positions (%s entries, %zu KiB) "
              "— 1/4 of the %zu-block dense-equivalent footprint\n",
              engine.kv_pool().n_blocks(), engine.kv_pool().block_size(),
              to_string(engine.kv_pool().mode()).c_str(),
              engine.kv_pool().storage_bytes() / 1024, dense_blocks);

  // A 16-token "system prompt" shared by every request (two full KV block
  // columns), followed by per-request tails.
  std::vector<std::size_t> prefix;
  for (std::size_t i = 0; i < 16; ++i) prefix.push_back((i * 11 + 5) % 256);
  std::vector<Request> requests;
  const std::size_t tails[6][3] = {{11, 3, 52},  {200, 17, 9}, {5, 55, 5},
                                   {99, 98, 97}, {42, 120, 7}, {250, 251, 1}};
  const std::size_t gens[6] = {24, 32, 16, 28, 20, 24};
  for (std::size_t r = 0; r < 6; ++r) {
    Request req;
    req.prompt = prefix;
    req.prompt.insert(req.prompt.end(), std::begin(tails[r]),
                      std::end(tails[r]));
    req.max_new_tokens = gens[r];
    req.priority = r % 2;  // alternate batch (0) / interactive (1)
    requests.push_back(std::move(req));
  }
  std::printf("\n%zu requests share a %zu-token prefix; %zu batch slots, "
              "%zu decode threads, %s scheduler, %zu-token prefill chunks\n\n",
              requests.size(), prefix.size(), serving_cfg.max_batch,
              serving_cfg.n_threads, engine.scheduler().name().c_str(),
              serving_cfg.prefill_chunk_tokens);

  std::size_t mismatches = 0;
  mismatches += serve_round(engine, prepared, requests, "round 1 cold");
  const std::size_t cold_hits = engine.stats().prefix_hits;
  mismatches += serve_round(engine, prepared, requests, "round 2 warm");
  const std::size_t warm_hits = engine.stats().prefix_hits - cold_hits;
  const auto s = engine.stats();

  std::printf("round 2 warm prefix hits: %zu (of %zu requests), %zu prefill "
              "decodes skipped total; pool peak %zu blocks of %zu\n",
              warm_hits, requests.size(), s.prefix_hit_tokens,
              s.blocks_peak, engine.kv_pool().n_blocks());

  // Generation round: the same engine serves seeded nucleus sampling with
  // stop conditions. Identical (seed, params, prompt) must reproduce the
  // identical stream — submitted twice to prove it — and the streaming
  // token observer harvests tokens as they are produced.
  Request gen;
  gen.prompt = prefix;
  gen.max_new_tokens = 24;
  gen.priority = 1;
  gen.sampling.policy = SamplePolicy::kTopP;
  gen.sampling.temperature = 0.9f;
  gen.sampling.top_k = 32;
  gen.sampling.top_p = 0.9f;
  gen.sampling.seed = 2024;
  gen.sampling.stop_tokens = {17};
  std::vector<std::size_t> streamed_a;
  FinishReason streamed_reason = FinishReason::kNone;
  const RequestId gen_a = engine.submit(gen);
  engine.set_token_observer([&](RequestId id, std::size_t index,
                                std::size_t token, FinishReason reason) {
    if (id != gen_a) return;
    (void)index;
    streamed_a.push_back(token);
    if (reason != FinishReason::kNone) streamed_reason = reason;
  });
  const RequestId gen_b = engine.submit(gen);  // same seed, same stream
  engine.run();
  engine.set_token_observer(nullptr);
  const auto res_a = engine.result(gen_a);
  const auto res_b = engine.result(gen_b);
  std::printf("\nsampled round (%s, t=%.1f, k=%zu, p=%.1f, seed=%llu): %zu "
              "tokens streamed, finish reason %s\n",
              to_string(gen.sampling.policy).c_str(),
              static_cast<double>(gen.sampling.temperature),
              gen.sampling.top_k, static_cast<double>(gen.sampling.top_p),
              static_cast<unsigned long long>(gen.sampling.seed),
              streamed_a.size(), to_string(res_a.finish_reason).c_str());
  if (res_a.tokens != res_b.tokens ||
      res_a.finish_reason != res_b.finish_reason) {
    std::printf("ERROR: identical seeded requests diverged\n");
    return 1;
  }
  if (streamed_a != std::vector<std::size_t>(
                        res_a.tokens.begin() +
                            static_cast<std::ptrdiff_t>(res_a.prompt_len),
                        res_a.tokens.end()) ||
      streamed_reason != res_a.finish_reason) {
    std::printf("ERROR: streamed tokens diverged from the final result\n");
    return 1;
  }
  print_stats("sampled", engine);
  engine.release(gen_a);
  engine.release(gen_b);

  // Traced round: the same workload once more through a fresh engine with
  // OPAL_TRACE set — the opt-in a deployment flips without recompiling.
  // The event stream must be non-empty and balanced (every submitted
  // request retires in exactly one finish or evict), the Chrome trace must
  // land on disk, and the traced results must stay bitwise identical to
  // the dense baseline — tracing observes, never steers.
  {
    setenv("OPAL_TRACE", "1", 1);
    ServingEngine traced(prepared, serving_cfg);
    unsetenv("OPAL_TRACE");
    if (!traced.tracer().enabled()) {
      std::printf("ERROR: OPAL_TRACE did not enable the tracer\n");
      return 1;
    }
    if (serve_round(traced, prepared, requests, "round 3 traced") != 0) {
      std::printf("ERROR: traced round diverged from the dense baseline\n");
      return 1;
    }
    const auto events = traced.tracer().events();
    std::size_t enqueues = 0, admits = 0, finishes = 0, evicts = 0,
                step_records = 0;
    for (const auto& ev : events) {
      switch (ev.kind) {
        case TraceEventKind::kEnqueue: ++enqueues; break;
        case TraceEventKind::kAdmit: ++admits; break;
        case TraceEventKind::kFinish: ++finishes; break;
        case TraceEventKind::kEvict: ++evicts; break;
        case TraceEventKind::kStep: ++step_records; break;
        default: break;
      }
    }
    if (events.empty() || step_records == 0 ||
        enqueues != requests.size() || finishes + evicts != enqueues ||
        admits < enqueues) {
      std::printf("ERROR: trace stream unbalanced: %zu events, %zu "
                  "enqueues, %zu admits, %zu finishes, %zu evicts, %zu "
                  "steps\n",
                  events.size(), enqueues, admits, finishes, evicts,
                  step_records);
      return 1;
    }
    const char* trace_path = "serve_batch_trace.json";
    std::ofstream out(trace_path);
    traced.tracer().write_chrome_trace(out);
    out.close();
    std::printf("\ntraced round: %zu events (%zu enqueued -> %zu admits -> "
                "%zu finished + %zu evicted over %zu step records), Chrome "
                "trace written to %s\n",
                events.size(), enqueues, admits, finishes, evicts,
                step_records, trace_path);
  }

  if (mismatches != 0) {
    std::printf("ERROR: %zu results diverged from the dense baseline\n",
                mismatches);
    return 1;
  }
  if (warm_hits == 0) {
    std::printf("ERROR: warm round served no request from the prefix "
                "cache\n");
    return 1;
  }
  std::printf("all %zu results (both rounds) bitwise identical to the dense "
              "fp32 baseline\n", 2 * requests.size());
  return 0;
}
