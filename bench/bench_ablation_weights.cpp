// Ablation (DESIGN.md §5): the weight-quantizer substrate. Compares plain
// RTN, RTN with per-group clip search, and full OPTQ/GPTQ error
// compensation at W3/W4 by the *layer output* error they leave on
// outlier-bearing calibration activations — the quantity OWQ [5] and
// OPTQ [2] optimize.
#include <cstdio>
#include <vector>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "owq/gptq.h"
#include "owq/owq.h"

namespace {

double output_mse(const opal::Matrix& w, const opal::Matrix& dequant,
                  const opal::Matrix& calib) {
  std::vector<float> y_ref(w.rows()), y_test(w.rows());
  double total = 0.0;
  for (std::size_t t = 0; t < calib.rows(); ++t) {
    opal::matvec(w, calib.row(t), y_ref);
    opal::matvec(dequant, calib.row(t), y_test);
    total += opal::mse(y_ref, y_test);
  }
  return total / static_cast<double>(calib.rows());
}

}  // namespace

int main() {
  using namespace opal;
  const std::size_t rows = 128, cols = 256;
  Rng rng = make_rng(11);
  const Matrix w = make_weight_matrix(rng, rows, cols);
  ActivationModel acts(12, cols, 0.02f);
  const Matrix calib = acts.sample_matrix(384);

  HessianAccumulator hessian(cols);
  std::vector<double> diag_sens(cols, 0.0);
  for (std::size_t t = 0; t < calib.rows(); ++t) {
    hessian.accumulate(calib.row(t));
  }
  for (std::size_t j = 0; j < cols; ++j) diag_sens[j] = hessian.at(j, j);

  std::printf("=== Ablation: weight quantizer (layer-output MSE) ===\n");
  std::printf("%-26s %14s %14s\n", "Quantizer", "W4", "W3");
  for (const bool keep_fp : {false, true}) {
    const double frac4 = keep_fp ? 0.0025 * 8 : 0.0;  // scaled-up outliers
    const double frac3 = keep_fp ? 0.0033 * 8 : 0.0;
    double results[2][3];
    for (int bi = 0; bi < 2; ++bi) {
      const int bits = bi == 0 ? 4 : 3;
      const double frac = bits == 4 ? frac4 : frac3;
      OwqConfig rtn{bits, frac, 32, false};
      OwqConfig clip{bits, frac, 32, true};
      GptqConfig gptq;
      gptq.bits = bits;
      gptq.outlier_fraction = frac;
      gptq.group_size = 32;
      results[bi][0] =
          output_mse(w, owq_quantize(w, diag_sens, rtn).dequantized, calib);
      results[bi][1] =
          output_mse(w, owq_quantize(w, diag_sens, clip).dequantized, calib);
      results[bi][2] =
          output_mse(w, gptq_quantize(w, hessian, gptq).dequantized, calib);
    }
    const char* suffix = keep_fp ? " + bf16 outlier cols" : "";
    std::printf("%-26s %14.6f %14.6f\n",
                (std::string("RTN group-max") + suffix).c_str(),
                results[0][0], results[1][0]);
    std::printf("%-26s %14.6f %14.6f\n",
                (std::string("RTN + clip search") + suffix).c_str(),
                results[0][1], results[1][1]);
    std::printf("%-26s %14.6f %14.6f\n",
                (std::string("OPTQ/GPTQ") + suffix).c_str(), results[0][2],
                results[1][2]);
    std::printf("\n");
  }
  std::printf("Takeaway: clip search roughly halves RTN's output error and "
              "GPTQ compensation cuts it further, mirroring why OWQ builds "
              "on OPTQ; bf16 outlier columns matter most at W3.\n");
  return 0;
}
