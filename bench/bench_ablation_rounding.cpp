// Ablation (DESIGN.md §5): rounding mode of the shift-based quantizer.
// Fig 2 depicts plain truncation (shifted-out bits crossed out); the MX
// spec rounds to nearest. This bench quantifies what the cheaper shifter
// costs in quantization noise for MXINT and MX-OPAL across bit-widths.
#include <cstdio>
#include <vector>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "quant/mx_opal.h"
#include "quant/mxint.h"

int main() {
  using namespace opal;
  ActivationModel acts(7, 4096, 0.01f);
  Matrix data = acts.sample_matrix(16);
  std::vector<float> out(data.size());

  std::printf("=== Ablation: round-to-nearest vs truncating shifter ===\n");
  std::printf("%-10s %4s %14s %14s %8s\n", "Format", "b", "nearest MSE",
              "truncate MSE", "ratio");
  for (const int bits : {3, 4, 5, 7, 8}) {
    const MxIntQuantizer near_q(128, bits, RoundingMode::kNearest);
    const MxIntQuantizer trunc_q(128, bits, RoundingMode::kTruncate);
    near_q.quantize_dequantize(data.flat(), out);
    const double near_err = mse(data.flat(), out);
    trunc_q.quantize_dequantize(data.flat(), out);
    const double trunc_err = mse(data.flat(), out);
    std::printf("%-10s %4d %14.8f %14.8f %8.2f\n", "MXINT", bits, near_err,
                trunc_err, trunc_err / near_err);
  }
  for (const int bits : {3, 4, 5, 7, 8}) {
    const MxOpalQuantizer near_q(128, bits, 4, RoundingMode::kNearest);
    const MxOpalQuantizer trunc_q(128, bits, 4, RoundingMode::kTruncate);
    near_q.quantize_dequantize(data.flat(), out);
    const double near_err = mse(data.flat(), out);
    trunc_q.quantize_dequantize(data.flat(), out);
    const double trunc_err = mse(data.flat(), out);
    std::printf("%-10s %4d %14.8f %14.8f %8.2f\n", "MX-OPAL", bits,
                near_err, trunc_err, trunc_err / near_err);
  }
  std::printf("\nTakeaway: truncation costs ~2-4x MSE at low bit-widths; a "
              "round-half-up shifter (one extra adder) is worth it, which "
              "is why the repo defaults to nearest.\n");
  return 0;
}
