// Table 2 reproduction: two language-modeling streams (the Wiki / C4
// stand-ins) plus two multiple-choice tasks (the ARC / PIQA stand-ins) for
// the Llama2 family under OWQ WxA16 vs MX-OPAL WxAy/z.
#include <cstdio>
#include <vector>

#include "eval/perplexity.h"
#include "eval/schemes.h"
#include "eval/tasks.h"

int main() {
  using namespace opal;
  std::printf("=== Table 2: language modeling + zero-shot QA (proxy tasks) "
              "===\n");
  std::printf("%-14s %-16s %8s %8s %8s %8s\n", "Model", "Scheme", "Wiki",
              "C4", "ARC", "PIQA");

  const std::vector<ModelConfig> models = {llama2_7b(), llama2_13b(),
                                           llama2_70b()};
  for (std::size_t m = 0; m < models.size(); ++m) {
    const std::uint64_t seed = 300 + 31 * m;
    SyntheticModel model(scaled_for_eval(models[m], 128, 3, 256), seed, 0.02f);
    calibrate_logit_scale(model, 24, seed + 1);
    const auto calibration = calibrate_model(model, 48, seed + 2);

    const std::size_t n_tokens = 160;
    EngineConfig teacher_cfg;
    teacher_cfg.max_seq_len = n_tokens + 2;
    InferenceEngine teacher(model, teacher_cfg);
    // Two independent streams play the two corpora.
    const auto wiki = generate_stream(teacher, n_tokens, seed + 3);
    const auto c4 = generate_stream(teacher, n_tokens, seed + 4);
    // Two tasks with different prompt statistics play ARC / PIQA.
    McTaskConfig arc_cfg;
    arc_cfg.n_items = 48;
    arc_cfg.prompt_len = 20;
    arc_cfg.seed = seed + 5;
    McTaskConfig piqa_cfg;
    piqa_cfg.n_items = 48;
    piqa_cfg.prompt_len = 10;
    piqa_cfg.seed = seed + 6;
    const auto arc = make_mc_task(teacher, arc_cfg);
    const auto piqa = make_mc_task(teacher, piqa_cfg);

    for (const auto& scheme : table2_schemes()) {
      EngineConfig cfg = scheme.config;
      cfg.max_seq_len = n_tokens + 2;
      InferenceEngine engine(model, cfg, &calibration);
      const double ppl_wiki = evaluate_perplexity(engine, wiki);
      const double ppl_c4 = evaluate_perplexity(engine, c4);
      const double acc_arc = 100.0 * evaluate_mc_accuracy(engine, arc);
      const double acc_piqa = 100.0 * evaluate_mc_accuracy(engine, piqa);
      std::printf("%-14s %-16s %8.3f %8.3f %8.2f %8.2f\n",
                  models[m].name.c_str(), scheme.label.c_str(), ppl_wiki,
                  ppl_c4, acc_arc, acc_piqa);
    }
  }

  std::printf(
      "\nPaper reference (shape): MX-OPAL W4A4/7 costs ~0.24 PPL and "
      "~0.4%% accuracy vs OWQ W4A16; W3A3/5 costs ~0.6 PPL and ~1.7%% "
      "accuracy vs OWQ W3A16.\n");
  return 0;
}
