// Serving SLO bench: open-loop arrivals against the full engine, latency
// read from the engine's own observability layer (serving.ttft_ms /
// serving.itl_ms histograms — the numbers a deployment would alert on).
//
// Unlike bench_scheduler (closed load: everything submitted up front), the
// request streams here are OPEN LOOP: arrival steps are fixed by a seeded
// schedule before serving begins, so a slow policy faces a growing queue
// instead of a conveniently waiting one. Arrival schedules are denominated
// in engine steps (deterministic: the same schedule replays bit-for-bit on
// any machine); the latencies measured under them are wall-clock.
//
// Scenarios:
//   chat-shared-history   — 12 chat turns over one 64-token shared history
//                           (prefix cache on), Poisson arrivals, every 3rd
//                           request interactive-priority;
//   long-prompt-short-ans — 10 summarization-shaped requests (120-token
//                           prompt, 4-token answer), Poisson arrivals;
//   short-prompt-long-ans — 12 generation-shaped requests (8-token prompt,
//                           24-token answer) in bursts of four.
//
// Each scenario runs under fifo / priority / fair-share (chunked prefill),
// and the per-policy p50/p95/p99 TTFT and inter-token latency are taken
// from ServingEngine::metrics() and persisted to BENCH_serving_slo.json
// (argv[1] overrides the path).
//
// Hardware-in-the-loop section: every scenario x policy run is traced
// (opal.step_trace/v2) and replayed through the accelerator device model
// (accel/replay.h) on the BF16, OWQ-W4, and OPAL devices, attributing
// energy per token, device latency, DRAM traffic, core area, and TOPS/W to
// each policy — and persisted to BENCH_hw_replay.json (argv[2] overrides
// the path). A fourth, repetitive scenario serves under n-gram speculative
// decoding and replays its trace so the per-device spec_saved_j
// attribution is exercised on bench traffic. A final profiled re-run
// (ServingConfig::profile) checks the kernel/phase profiler observes
// without steering.
//
// Asserted (exit 1): outputs bitwise identical across policies per
// scenario; histogram counts are exact (one TTFT sample per request, one
// ITL sample per non-first token); the serving.* counters mirror Stats;
// an untraced re-run of the first scenario produces bitwise identical
// outputs (observability never steers); replay is deterministic (same
// trace replayed twice -> byte-identical report JSON) and conserving
// (replayed rows == engine rows); the serialized v2 trace replays
// identically to the in-process one; and the OPAL device beats BF16 on
// energy per token in every scenario under every policy.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "accel/replay.h"
#include "common/kernel_profiler.h"
#include "eval/schemes.h"
#include "llm/drafter.h"
#include "llm/scheduler.h"
#include "llm/serving_engine.h"

namespace {

using namespace opal;

/// Deterministic LCG (Numerical Recipes constants): the schedule source.
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
  /// Uniform in (0, 1].
  double uniform() {
    return (static_cast<double>(next() % 1000000) + 1.0) / 1000000.0;
  }
};

struct Arrival {
  std::size_t step = 0;  // engine step at which the request is submitted
  Request req;
};

struct Scenario {
  std::string name;
  std::string arrival;  // "poisson" | "bursty"
  bool prefix_cache = false;
  std::vector<Arrival> arrivals;
};

std::vector<std::size_t> poisson_steps(std::size_t n, double mean_gap,
                                       std::uint64_t seed) {
  Lcg rng(seed);
  std::vector<std::size_t> steps;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += -mean_gap * std::log(rng.uniform());  // exponential inter-arrival
    steps.push_back(static_cast<std::size_t>(t));
  }
  return steps;
}

Scenario chat_shared_history() {
  Scenario s;
  s.name = "chat-shared-history";
  s.arrival = "poisson";
  s.prefix_cache = true;
  const auto steps = poisson_steps(12, 2.0, 101);
  for (std::size_t r = 0; r < steps.size(); ++r) {
    Arrival a;
    a.step = steps[r];
    for (std::size_t i = 0; i < 64; ++i) {
      a.req.prompt.push_back((i * 13 + 5) % 256);  // shared history
    }
    for (std::size_t i = 0; i < 8; ++i) {
      a.req.prompt.push_back((i * 29 + 7 * r + 3) % 256);  // this turn
    }
    a.req.max_new_tokens = 8;
    a.req.priority = r % 3 == 2 ? 1 : 0;  // every 3rd turn is interactive
    s.arrivals.push_back(std::move(a));
  }
  return s;
}

Scenario long_prompt_short_answer() {
  Scenario s;
  s.name = "long-prompt-short-ans";
  s.arrival = "poisson";
  const auto steps = poisson_steps(10, 4.0, 202);
  for (std::size_t r = 0; r < steps.size(); ++r) {
    Arrival a;
    a.step = steps[r];
    for (std::size_t i = 0; i < 120; ++i) {
      a.req.prompt.push_back((i * 17 + 11 * r + 1) % 256);
    }
    a.req.max_new_tokens = 4;
    a.req.priority = r % 2;
    s.arrivals.push_back(std::move(a));
  }
  return s;
}

Scenario short_prompt_long_answer() {
  Scenario s;
  s.name = "short-prompt-long-ans";
  s.arrival = "bursty";
  for (std::size_t r = 0; r < 12; ++r) {
    Arrival a;
    a.step = (r / 4) * 6;  // bursts of four, six steps apart
    for (std::size_t i = 0; i < 8; ++i) {
      a.req.prompt.push_back((i * 31 + 9 * r + 2) % 256);
    }
    a.req.max_new_tokens = 24;
    a.req.priority = r % 4 == 0 ? 1 : 0;
    s.arrivals.push_back(std::move(a));
  }
  return s;
}

/// Repetitive generation-shaped workload for the speculative section: each
/// prompt cycles one 8-token motif, so the prompt-lookup n-gram drafter
/// always finds a recurrence of the frontier context to propose from —
/// verify bursts fire on real serving traffic, not just unit tests.
Scenario repetitive_long_answer() {
  Scenario s;
  s.name = "speculative-ngram";
  s.arrival = "bursty";
  for (std::size_t r = 0; r < 8; ++r) {
    Arrival a;
    a.step = (r / 4) * 4;
    for (std::size_t i = 0; i < 32; ++i) {
      a.req.prompt.push_back(((i % 8) * 23 + 5 * r + 3) % 256);  // motif x4
    }
    a.req.max_new_tokens = 24;
    s.arrivals.push_back(std::move(a));
  }
  return s;
}

struct LatencySummary {
  std::uint64_t count = 0;
  double mean = 0.0, max = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

LatencySummary summarize(const MetricsRegistry::Snapshot& snap,
                         std::string_view name) {
  LatencySummary out;
  const auto* h = snap.find_histogram(name);
  if (h == nullptr) return out;
  out.count = h->count;
  out.mean = h->mean();
  out.max = h->max;
  out.p50 = h->p50;
  out.p95 = h->p95;
  out.p99 = h->p99;
  return out;
}

struct PolicyRun {
  std::string policy;
  std::size_t steps = 0;
  double seconds = 0.0;
  std::vector<std::vector<std::size_t>> tokens;  // per request
  std::size_t generated = 0;
  LatencySummary ttft, itl;
  ServingEngine::Stats stats;
  MetricsRegistry::Snapshot snap;
  StepTrace trace;         // only when traced
  std::string trace_json;  // serialized opal.step_trace/v2, only when traced
  KernelProfile profile;   // only when profiled
};

PolicyRun serve(const std::shared_ptr<const PreparedModel>& model,
                const Scenario& scenario,
                const std::shared_ptr<Scheduler>& policy, std::string name,
                bool trace = false, SpeculativeConfig speculative = {},
                bool profile = false) {
  using clock = std::chrono::steady_clock;
  PolicyRun out;
  out.policy = std::move(name);

  ServingConfig cfg;
  cfg.max_batch = 4;
  cfg.prefill_chunk_tokens = 16;
  cfg.enable_prefix_cache = scenario.prefix_cache;
  cfg.scheduler = policy;
  cfg.trace = trace;
  cfg.speculative = speculative;
  cfg.profile = profile;

  ServingEngine engine(model, cfg);
  std::vector<RequestId> ids;
  std::size_t next = 0;
  const auto t0 = clock::now();
  // Open loop: requests land on their scheduled step whether or not the
  // engine has caught up; a step with nothing admitted and nothing running
  // still advances the arrival clock (an idle tick).
  while (next < scenario.arrivals.size() || engine.running() > 0 ||
         engine.queued() > 0) {
    while (next < scenario.arrivals.size() &&
           scenario.arrivals[next].step <= out.steps) {
      ids.push_back(engine.submit(scenario.arrivals[next].req));
      ++next;
    }
    engine.step();
    ++out.steps;
  }
  out.seconds = std::chrono::duration<double>(clock::now() - t0).count();

  for (const RequestId id : ids) {
    auto res = engine.result(id);
    out.generated += res.generated();
    out.tokens.push_back(std::move(res.tokens));
  }
  out.stats = engine.stats();
  out.snap = engine.metrics();
  out.ttft = summarize(out.snap, "serving.ttft_ms");
  out.itl = summarize(out.snap, "serving.itl_ms");
  if (trace) {
    out.trace = step_trace_from_tracer(engine.tracer());
    std::ostringstream ts;
    engine.tracer().write_step_trace(ts);
    out.trace_json = ts.str();
  }
  if (profile) out.profile = engine.profile();
  return out;
}

void emit_replay(std::ofstream& json, const ReplayReport& rep,
                 const char* tail) {
  json << "      {\"device\": \"" << rep.device
       << "\", \"energy_j\": " << rep.energy_j
       << ", \"energy_per_token_j\": " << rep.energy_per_token_j()
       << ", \"latency_s\": " << rep.latency_s
       << ", \"dram_bytes\": " << rep.dram_bytes
       << ", \"dram_bound_steps\": " << rep.dram_bound_steps
       << ", \"prefix_saved_j\": " << rep.prefix_saved_j
       << ", \"spec_saved_j\": " << rep.spec_saved_j
       << ", \"core_area_mm2\": " << rep.core_area_mm2
       << ", \"total_macs\": " << rep.total_macs
       << ", \"tops_per_watt\": " << rep.tops_per_watt() << "}" << tail
       << "\n";
}

void emit_latency(std::ofstream& json, const char* key,
                  const LatencySummary& l, const char* tail) {
  json << "      \"" << key << "\": {\"count\": " << l.count
       << ", \"mean\": " << l.mean << ", \"max\": " << l.max
       << ", \"p50\": " << l.p50 << ", \"p95\": " << l.p95
       << ", \"p99\": " << l.p99 << "}" << tail << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 3, 256), 7);
  calibrate_logit_scale(model, 24, 8);

  EngineConfig ecfg;
  ecfg.max_seq_len = 256;
  ecfg.kv_block_size = 16;
  ecfg.kv_mode = KvQuantMode::kInt8;
  auto prepared = std::make_shared<const PreparedModel>(model, ecfg);

  const std::vector<Scenario> scenarios = {
      chat_shared_history(), long_prompt_short_answer(),
      short_prompt_long_answer()};

  const std::string path =
      argc > 1 ? argv[1] : "BENCH_serving_slo.json";
  const std::string hw_path =
      argc > 2 ? argv[2] : "BENCH_hw_replay.json";
  std::ofstream json(path);
  json.precision(4);
  json << std::fixed << "{\n  \"bench\": \"serving_slo\",\n"
       << "  \"scenarios\": [\n";
  std::ofstream hw(hw_path);
  hw.precision(9);
  hw << "{\n  \"bench\": \"hw_replay\",\n"
     << "  \"trace_schema\": \"opal.step_trace/v2\",\n"
     << "  \"scenarios\": [\n";

  const std::vector<DeviceConfig> devices = {
      make_bf16_device(), make_owq_device(4), make_opal_device(4, 7, 4)};

  bool failed = false;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const Scenario& sc = scenarios[si];
    std::vector<PolicyRun> runs;
    runs.push_back(serve(prepared, sc, std::make_shared<FifoScheduler>(),
                         "fifo", /*trace=*/true));
    runs.push_back(serve(prepared, sc, std::make_shared<PriorityScheduler>(),
                         "priority", /*trace=*/true));
    runs.push_back(serve(prepared, sc, std::make_shared<FairShareScheduler>(),
                         "fair-share", /*trace=*/true));

    std::printf("%s (%s arrivals, %zu requests)\n", sc.name.c_str(),
                sc.arrival.c_str(), sc.arrivals.size());
    std::printf("  %-12s %8s %9s %9s %9s %9s %9s %9s\n", "policy", "steps",
                "ttft p50", "ttft p95", "ttft p99", "itl p50", "itl p95",
                "itl p99");
    for (const auto& r : runs) {
      std::printf("  %-12s %8zu %7.2fms %7.2fms %7.2fms %7.2fms %7.2fms "
                  "%7.2fms\n",
                  r.policy.c_str(), r.steps, r.ttft.p50, r.ttft.p95,
                  r.ttft.p99, r.itl.p50, r.itl.p95, r.itl.p99);
    }
    std::printf("\n");

    // --- assertions ---
    for (std::size_t i = 1; i < runs.size(); ++i) {
      if (runs[i].tokens != runs[0].tokens) {
        std::printf("ERROR: %s / %s changed request outputs\n",
                    sc.name.c_str(), runs[i].policy.c_str());
        failed = true;
      }
    }
    for (const auto& r : runs) {
      // One TTFT sample per request, one ITL sample per non-first token.
      if (r.ttft.count != sc.arrivals.size() ||
          r.itl.count != r.generated - sc.arrivals.size()) {
        std::printf("ERROR: %s / %s histogram counts off: ttft %llu (want "
                    "%zu), itl %llu (want %zu)\n",
                    sc.name.c_str(), r.policy.c_str(),
                    static_cast<unsigned long long>(r.ttft.count),
                    sc.arrivals.size(),
                    static_cast<unsigned long long>(r.itl.count),
                    r.generated - sc.arrivals.size());
        failed = true;
      }
      // The counters the registry reports are the Stats fields, recounted.
      if (r.snap.counter_value("serving.steps") != r.stats.steps ||
          r.snap.counter_value("serving.tokens_decoded") !=
              r.stats.tokens_decoded ||
          r.snap.counter_value("serving.preemptions") !=
              r.stats.preemptions) {
        std::printf("ERROR: %s / %s metrics counters diverge from Stats\n",
                    sc.name.c_str(), r.policy.c_str());
        failed = true;
      }
    }

    json << "    {\"name\": \"" << sc.name << "\", \"arrival\": \""
         << sc.arrival << "\", \"requests\": " << sc.arrivals.size()
         << ",\n     \"policies\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      json << "    {\"policy\": \"" << r.policy << "\", \"steps\": "
           << r.steps << ", \"wall_s\": " << r.seconds
           << ", \"generated\": " << r.generated << ",\n";
      emit_latency(json, "ttft_ms", r.ttft, ",");
      emit_latency(json, "itl_ms", r.itl, "");
      json << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "     ]}" << (si + 1 < scenarios.size() ? "," : "") << "\n";

    // --- hardware-in-the-loop replay: re-cost each policy's trace on the
    // accelerator device model ---
    std::printf("  %-12s %10s %14s %12s %12s\n", "hw replay", "device",
                "energy/tok", "latency", "DRAM");
    hw << "    {\"name\": \"" << sc.name << "\", \"requests\": "
       << sc.arrivals.size() << ",\n     \"policies\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      if (r.trace.dropped_steps != 0) {
        std::printf("ERROR: %s / %s trace dropped %llu steps (ring too "
                    "small for the bench)\n",
                    sc.name.c_str(), r.policy.c_str(),
                    static_cast<unsigned long long>(r.trace.dropped_steps));
        failed = true;
      }
      std::vector<ReplayReport> reps;
      for (const DeviceConfig& dev : devices) {
        reps.push_back(replay_trace(dev, r.trace));
      }
      // Conservation: replay sees exactly the rows the engine fed.
      if (reps[0].rows_fed != r.stats.tokens_decoded ||
          reps[0].prefix_rows_restored != r.stats.prefix_hit_tokens) {
        std::printf("ERROR: %s / %s replay row accounting diverges from "
                    "engine Stats (%zu vs %zu rows)\n",
                    sc.name.c_str(), r.policy.c_str(), reps[0].rows_fed,
                    r.stats.tokens_decoded);
        failed = true;
      }
      // Determinism + file round-trip: the serialized v2 trace replays to
      // the byte-identical report, twice.
      const StepTrace parsed = parse_step_trace(r.trace_json);
      const std::string once = replay_trace(devices[0], parsed).to_json();
      if (once != reps[0].to_json() ||
          once != replay_trace(devices[0], parsed).to_json()) {
        std::printf("ERROR: %s / %s replay not deterministic across "
                    "serialization\n",
                    sc.name.c_str(), r.policy.c_str());
        failed = true;
      }
      // The paper's point, end to end: OPAL spends less energy per
      // committed token than the BF16 baseline on the same trace.
      if (reps[2].energy_per_token_j() >= reps[0].energy_per_token_j()) {
        std::printf("ERROR: %s / %s OPAL energy/token %.3e !< BF16 %.3e\n",
                    sc.name.c_str(), r.policy.c_str(),
                    reps[2].energy_per_token_j(),
                    reps[0].energy_per_token_j());
        failed = true;
      }
      hw << "    {\"policy\": \"" << r.policy << "\", \"steps\": "
         << reps[0].n_steps << ", \"rows_fed\": " << reps[0].rows_fed
         << ", \"tokens_committed\": " << reps[0].tokens_committed
         << ", \"prefix_rows_restored\": " << reps[0].prefix_rows_restored
         << ", \"kv_bytes_written\": " << reps[0].kv_bytes_written
         << ",\n     \"devices\": [\n";
      for (std::size_t d = 0; d < reps.size(); ++d) {
        const ReplayReport& rep = reps[d];
        std::printf("  %-12s %10s %11.3e J %9.3e s %9.2f MB%s\n",
                    d == 0 ? r.policy.c_str() : "", rep.device.c_str(),
                    rep.energy_per_token_j(), rep.latency_s,
                    rep.dram_bytes / 1e6,
                    rep.dram_bound_steps == rep.n_steps ? "  (DRAM-bound)"
                                                        : "");
        emit_replay(hw, rep, d + 1 < reps.size() ? "," : "");
      }
      hw << "     ]}" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    hw << "     ]},\n";  // the speculative scenario below closes the array
    std::printf("\n");
  }
  json << "  ]\n}\n";
  json.close();

  // --- speculative scenario: n-gram self-drafting served end to end, then
  // replayed through the devices so spec_saved_j attribution is exercised
  // on bench traffic, not just unit fixtures ---
  {
    const Scenario sc = repetitive_long_answer();
    const auto base = serve(prepared, sc, std::make_shared<FifoScheduler>(),
                            "fifo", /*trace=*/true);
    SpeculativeConfig spec;
    spec.policy = DraftPolicy::kNgram;
    const auto specrun = serve(prepared, sc,
                               std::make_shared<FifoScheduler>(),
                               "fifo+ngram", /*trace=*/true, spec);
    // Verified speculation is lossless: committed tokens are the greedy
    // continuation, bitwise.
    if (specrun.tokens != base.tokens) {
      std::printf("ERROR: n-gram speculation changed request outputs\n");
      failed = true;
    }
    if (specrun.stats.spec_bursts == 0) {
      std::printf("ERROR: speculative scenario fired no verify bursts\n");
      failed = true;
    }
    std::printf("%s: %zu bursts, %zu/%zu drafts accepted, %.2f tokens/"
                "burst\n",
                sc.name.c_str(), specrun.stats.spec_bursts,
                specrun.stats.spec_accepted, specrun.stats.spec_drafted,
                specrun.stats.tokens_per_burst());
    std::printf("  %-12s %10s %14s %14s\n", "hw replay", "device",
                "energy/tok", "spec saved");
    hw << "    {\"name\": \"" << sc.name << "\", \"requests\": "
       << sc.arrivals.size() << ",\n     \"policies\": [\n";
    std::vector<ReplayReport> reps;
    for (const DeviceConfig& dev : devices) {
      reps.push_back(replay_trace(dev, specrun.trace));
    }
    hw << "    {\"policy\": \"" << specrun.policy << "\", \"steps\": "
       << reps[0].n_steps << ", \"rows_fed\": " << reps[0].rows_fed
       << ", \"tokens_committed\": " << reps[0].tokens_committed
       << ", \"prefix_rows_restored\": " << reps[0].prefix_rows_restored
       << ", \"kv_bytes_written\": " << reps[0].kv_bytes_written
       << ",\n     \"devices\": [\n";
    for (std::size_t d = 0; d < reps.size(); ++d) {
      const ReplayReport& rep = reps[d];
      // The burst passes must surface in the attribution: a verify burst
      // never costs exactly what its committed tokens would as decodes.
      if (rep.spec_saved_j == 0.0) {
        std::printf("ERROR: %s replay attributed no speculative delta\n",
                    rep.device.c_str());
        failed = true;
      }
      std::printf("  %-12s %10s %11.3e J %12.3e J\n",
                  d == 0 ? specrun.policy.c_str() : "", rep.device.c_str(),
                  rep.energy_per_token_j(), rep.spec_saved_j);
      emit_replay(hw, rep, d + 1 < reps.size() ? "," : "");
    }
    hw << "     ]}\n     ]}\n";
    std::printf("\n");
  }
  hw << "  ]\n}\n";
  hw.close();

  // --- profiled re-run: the always-on attribution layer must observe
  // without steering — outputs bitwise identical to the silent run, and the
  // kernel/phase tallies it reports must be non-empty ---
  {
    const auto plain = serve(prepared, scenarios[0],
                             std::make_shared<FifoScheduler>(), "fifo");
    const auto profiled = serve(prepared, scenarios[0],
                                std::make_shared<FifoScheduler>(), "fifo",
                                /*trace=*/false, SpeculativeConfig{},
                                /*profile=*/true);
    if (profiled.tokens != plain.tokens) {
      std::printf("ERROR: profiling changed request outputs\n");
      failed = true;
    }
    const KernelProfile& prof = profiled.profile;
    if (prof.total_kernel_calls() == 0 ||
        prof.phases[static_cast<std::size_t>(LayerPhase::kAttend)].calls ==
            0) {
      std::printf("ERROR: profiled run recorded no kernel/phase activity\n");
      failed = true;
    }
    std::printf("profiled re-run (%s): %llu kernel calls, "
                "%.1f ms attributed\n\n",
                scenarios[0].name.c_str(),
                static_cast<unsigned long long>(prof.total_kernel_calls()),
                static_cast<double>(prof.total_kernel_ns()) * 1e-6);
  }

  // Untraced re-run of the first scenario: the main runs above were traced
  // (the replay section needs the step trace) — observability must not
  // have steered them.
  {
    const auto plain = serve(prepared, scenarios[0],
                             std::make_shared<FifoScheduler>(), "fifo");
    const auto traced = serve(prepared, scenarios[0],
                              std::make_shared<FifoScheduler>(), "fifo",
                              /*trace=*/true);
    if (traced.tokens != plain.tokens) {
      std::printf("ERROR: tracing changed request outputs\n");
      failed = true;
    }
  }

  if (failed) return 1;
  std::printf("PASS: serving SLO bench — outputs bitwise identical across "
              "policies and under tracing, speculation, and profiling; "
              "per-policy TTFT/ITL percentiles written to %s\n",
              path.c_str());
  std::printf("PASS: hw replay — deterministic across serialization, row "
              "accounting conserved, OPAL < BF16 energy/token in every "
              "scenario under every policy, speculative savings attributed; "
              "per-policy attribution written to %s\n",
              hw_path.c_str());
  return 0;
}
