// Prefix-cache reuse bench: how much decode work and wall time a warm
// radix prefix index saves when traffic shares a long system prompt.
//
// One PreparedModel serves the same 8-request, shared-32-token-prefix
// workload three ways: prefix cache off (every request prefills its own
// prompt), cache on but cold (round 1 populates the index as sequences
// retire), and cache on warm (round 2 resubmits the workload against the
// populated index). Reported per run: token-decodes executed, wall time,
// and tokens/s. The warm run's decode count drops by ~the shared prefill
// — repeated-prompt serving goes from O(prompt x requests) towards
// O(prompt) — while outputs stay bitwise identical across all three runs
// (asserted).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "eval/schemes.h"
#include "llm/serving_engine.h"

namespace {

struct RunResult {
  std::vector<std::vector<std::size_t>> tokens;
  std::size_t decodes = 0;
  double seconds = 0.0;
  opal::ServingEngine::Stats stats;
};

RunResult serve(opal::ServingEngine& engine,
                const std::vector<opal::Request>& requests) {
  using clock = std::chrono::steady_clock;
  RunResult out;
  std::vector<opal::RequestId> ids;
  const auto t0 = clock::now();
  for (const auto& req : requests) ids.push_back(engine.submit(req));
  std::size_t n;
  while ((n = engine.step()) > 0) out.decodes += n;
  out.seconds = std::chrono::duration<double>(clock::now() - t0).count();
  for (const auto id : ids) {
    out.tokens.push_back(engine.result(id).tokens);
    engine.release(id);
  }
  out.stats = engine.stats();
  return out;
}

}  // namespace

int main() {
  using namespace opal;

  SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 3, 256), 7);
  calibrate_logit_scale(model, 24, 8);

  EngineConfig cfg;
  cfg.max_seq_len = 96;
  cfg.kv_block_size = 8;
  auto prepared = std::make_shared<const PreparedModel>(model, cfg);

  std::vector<std::size_t> prefix;
  for (std::size_t i = 0; i < 32; ++i) prefix.push_back((i * 13 + 3) % 256);
  std::vector<Request> requests;
  for (std::size_t r = 0; r < 8; ++r) {
    Request req;
    req.prompt = prefix;
    req.prompt.push_back(100 + r);
    req.prompt.push_back(10 + 3 * r);
    req.max_new_tokens = 12;
    requests.push_back(std::move(req));
  }
  const std::size_t prefill =
      requests.size() * (prefix.size() + 2);  // prompt decodes, unshared

  ServingConfig off_cfg;
  off_cfg.max_batch = 4;
  ServingEngine engine_off(prepared, off_cfg);
  const auto off = serve(engine_off, requests);

  ServingConfig on_cfg = off_cfg;
  on_cfg.enable_prefix_cache = true;
  ServingEngine engine_on(prepared, on_cfg);
  const auto cold = serve(engine_on, requests);
  const auto warm = serve(engine_on, requests);

  if (off.tokens != cold.tokens || off.tokens != warm.tokens) {
    std::printf("ERROR: outputs diverged between runs\n");
    return 1;
  }

  std::printf("8 requests x (%zu-token shared prefix + 2) prompt, 12 new "
              "tokens each; %zu unshared prompt decodes per round\n\n",
              prefix.size(), prefill);
  std::printf("%-18s %12s %10s %12s %12s %12s\n", "run", "decodes", "sec",
              "tokens/s", "prefix hits", "skipped");
  const auto row = [](const char* name, const RunResult& r,
                      std::size_t hits_before, std::size_t skip_before) {
    std::printf("%-18s %12zu %10.3f %12.1f %12zu %12zu\n", name, r.decodes,
                r.seconds, static_cast<double>(r.decodes) / r.seconds,
                r.stats.prefix_hits - hits_before,
                r.stats.prefix_hit_tokens - skip_before);
  };
  row("cache off", off, 0, 0);
  row("cache on, cold", cold, 0, 0);
  row("cache on, warm", warm, cold.stats.prefix_hits,
      cold.stats.prefix_hit_tokens);
  std::printf("\nwarm round executed %zu fewer decodes than cache-off "
              "(%.1fx fewer), outputs bitwise identical\n",
              off.decodes - warm.decodes,
              static_cast<double>(off.decodes) /
                  static_cast<double>(warm.decodes));

  // --- fp32 zero-copy block attend ---
  // Decode at long context through two identical paged sequences: one
  // reads KV straight from pool block storage (the default), one is forced
  // through the old gather-copy path (bitwise identical data — fp32 blocks
  // hold the written bits — so only the copy cost differs).
  {
    using clock = std::chrono::steady_clock;
    auto pool = prepared->make_kv_pool(2.0);
    SequenceState zero_copy = prepared->make_sequence(pool);
    SequenceState gathered = prepared->make_sequence(pool);
    gathered.set_force_gather(true);
    std::vector<std::size_t> ctx;
    for (std::size_t i = 0; i < 80; ++i) ctx.push_back((i * 17 + 1) % 256);
    prepared->prefill_chunk(zero_copy, ctx);
    prepared->prefill_chunk(gathered, ctx);

    constexpr std::size_t kRounds = 40, kSteps = 14;
    auto time_decode = [&](SequenceState& seq) {
      const auto t0 = clock::now();
      for (std::size_t round = 0; round < kRounds; ++round) {
        seq.truncate(ctx.size());
        for (std::size_t i = 0; i < kSteps; ++i) {
          prepared->step(seq, (round + i) % 256);
        }
      }
      return std::chrono::duration<double, std::milli>(clock::now() - t0)
          .count();
    };
    time_decode(gathered);  // warmup: touch both paths' working sets
    time_decode(zero_copy);
    const double ms_gather = time_decode(gathered);
    const double ms_zero_copy = time_decode(zero_copy);
    const auto a = zero_copy.logits();
    const auto b = gathered.logits();
    if (!std::equal(a.begin(), a.end(), b.begin())) {
      std::printf("ERROR: zero-copy attend diverged from gather\n");
      return 1;
    }
    std::printf("\nfp32 zero-copy block attend, %zu decode steps at context "
                ">= %zu: gather %.1f ms, zero-copy %.1f ms (%.0f%% less; "
                "logits bitwise identical)\n",
                kRounds * kSteps, ctx.size(), ms_gather, ms_zero_copy,
                100.0 * (1.0 - ms_zero_copy / ms_gather));
  }

  // --- fused dequantize-dot attend (quantized KV) ---
  // Same split for int8 and log2 pools: the fused path feeds attention the
  // blocks' quantized codes directly (kernels dequantize in-register, no
  // fp32 gather scratch is ever materialized — asserted via gather_count),
  // while the forced-gather sequence dequantizes the prefix into scratch
  // first. Within one kernel table the two are bitwise identical.
  for (const KvQuantMode mode : {KvQuantMode::kInt8, KvQuantMode::kLog2}) {
    using clock = std::chrono::steady_clock;
    EngineConfig qcfg = cfg;
    qcfg.kv_mode = mode;
    auto qprepared = std::make_shared<const PreparedModel>(model, qcfg);
    auto pool = qprepared->make_kv_pool(2.0);
    SequenceState fused = qprepared->make_sequence(pool);
    SequenceState gathered = qprepared->make_sequence(pool);
    gathered.set_force_gather(true);
    std::vector<std::size_t> ctx;
    for (std::size_t i = 0; i < 80; ++i) ctx.push_back((i * 17 + 1) % 256);
    qprepared->prefill_chunk(fused, ctx);
    qprepared->prefill_chunk(gathered, ctx);

    constexpr std::size_t kRounds = 40, kSteps = 14;
    auto time_decode = [&](SequenceState& seq) {
      const auto t0 = clock::now();
      for (std::size_t round = 0; round < kRounds; ++round) {
        seq.truncate(ctx.size());
        for (std::size_t i = 0; i < kSteps; ++i) {
          qprepared->step(seq, (round + i) % 256);
        }
      }
      return std::chrono::duration<double, std::milli>(clock::now() - t0)
          .count();
    };
    time_decode(gathered);  // warmup: touch both paths' working sets
    time_decode(fused);
    const double ms_gather = time_decode(gathered);
    const double ms_fused = time_decode(fused);
    if (fused.gather_count() != 0) {
      std::printf("ERROR: fused %s path materialized gather scratch "
                  "(%zu gathers)\n",
                  to_string(mode).c_str(), fused.gather_count());
      return 1;
    }
    if (gathered.gather_count() == 0) {
      std::printf("ERROR: forced-gather %s path never gathered\n",
                  to_string(mode).c_str());
      return 1;
    }
    const auto a = fused.logits();
    const auto b = gathered.logits();
    if (!std::equal(a.begin(), a.end(), b.begin())) {
      std::printf("ERROR: fused %s attend diverged from gather\n",
                  to_string(mode).c_str());
      return 1;
    }
    std::printf("fused %s dequant attend, %zu decode steps at context >= "
                "%zu: gather %.1f ms, fused %.1f ms (%.0f%% less; 0 scratch "
                "materializations, logits bitwise identical)\n",
                to_string(mode).c_str(), kRounds * kSteps, ctx.size(),
                ms_gather, ms_fused, 100.0 * (1.0 - ms_fused / ms_gather));
  }
  return 0;
}
