// Prefix-cache reuse bench: how much decode work and wall time a warm
// radix prefix index saves when traffic shares a long system prompt.
//
// One PreparedModel serves the same 8-request, shared-32-token-prefix
// workload three ways: prefix cache off (every request prefills its own
// prompt), cache on but cold (round 1 populates the index as sequences
// retire), and cache on warm (round 2 resubmits the workload against the
// populated index). Reported per run: token-decodes executed, wall time,
// and tokens/s. The warm run's decode count drops by ~the shared prefill
// — repeated-prompt serving goes from O(prompt x requests) towards
// O(prompt) — while outputs stay bitwise identical across all three runs
// (asserted).
#include <chrono>
#include <cstdio>
#include <vector>

#include "eval/schemes.h"
#include "llm/serving_engine.h"

namespace {

struct RunResult {
  std::vector<std::vector<std::size_t>> tokens;
  std::size_t decodes = 0;
  double seconds = 0.0;
  opal::ServingEngine::Stats stats;
};

RunResult serve(opal::ServingEngine& engine,
                const std::vector<opal::Request>& requests) {
  using clock = std::chrono::steady_clock;
  RunResult out;
  std::vector<opal::RequestId> ids;
  const auto t0 = clock::now();
  for (const auto& req : requests) ids.push_back(engine.submit(req));
  std::size_t n;
  while ((n = engine.step()) > 0) out.decodes += n;
  out.seconds = std::chrono::duration<double>(clock::now() - t0).count();
  for (const auto id : ids) {
    out.tokens.push_back(engine.result(id).tokens);
    engine.release(id);
  }
  out.stats = engine.stats();
  return out;
}

}  // namespace

int main() {
  using namespace opal;

  SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 3, 256), 7);
  calibrate_logit_scale(model, 24, 8);

  EngineConfig cfg;
  cfg.max_seq_len = 96;
  cfg.kv_block_size = 8;
  auto prepared = std::make_shared<const PreparedModel>(model, cfg);

  std::vector<std::size_t> prefix;
  for (std::size_t i = 0; i < 32; ++i) prefix.push_back((i * 13 + 3) % 256);
  std::vector<Request> requests;
  for (std::size_t r = 0; r < 8; ++r) {
    Request req;
    req.prompt = prefix;
    req.prompt.push_back(100 + r);
    req.prompt.push_back(10 + 3 * r);
    req.max_new_tokens = 12;
    requests.push_back(std::move(req));
  }
  const std::size_t prefill =
      requests.size() * (prefix.size() + 2);  // prompt decodes, unshared

  ServingConfig off_cfg;
  off_cfg.max_batch = 4;
  ServingEngine engine_off(prepared, off_cfg);
  const auto off = serve(engine_off, requests);

  ServingConfig on_cfg = off_cfg;
  on_cfg.enable_prefix_cache = true;
  ServingEngine engine_on(prepared, on_cfg);
  const auto cold = serve(engine_on, requests);
  const auto warm = serve(engine_on, requests);

  if (off.tokens != cold.tokens || off.tokens != warm.tokens) {
    std::printf("ERROR: outputs diverged between runs\n");
    return 1;
  }

  std::printf("8 requests x (%zu-token shared prefix + 2) prompt, 12 new "
              "tokens each; %zu unshared prompt decodes per round\n\n",
              prefix.size(), prefill);
  std::printf("%-18s %12s %10s %12s %12s %12s\n", "run", "decodes", "sec",
              "tokens/s", "prefix hits", "skipped");
  const auto row = [](const char* name, const RunResult& r,
                      std::size_t hits_before, std::size_t skip_before) {
    std::printf("%-18s %12zu %10.3f %12.1f %12zu %12zu\n", name, r.decodes,
                r.seconds, static_cast<double>(r.decodes) / r.seconds,
                r.stats.prefix_hits - hits_before,
                r.stats.prefix_hit_tokens - skip_before);
  };
  row("cache off", off, 0, 0);
  row("cache on, cold", cold, 0, 0);
  row("cache on, warm", warm, cold.stats.prefix_hits,
      cold.stats.prefix_hit_tokens);
  std::printf("\nwarm round executed %zu fewer decodes than cache-off "
              "(%.1fx fewer), outputs bitwise identical\n",
              off.decodes - warm.decodes,
              static_cast<double>(off.decodes) /
                  static_cast<double>(warm.decodes));
  return 0;
}
