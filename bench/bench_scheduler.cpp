// Scheduler TTFT bench: what each policy does to short-request
// time-to-first-token when long prompts hog a small batch.
//
// Workload: 2 long-prompt requests (160 tokens, priority 0) arrive first,
// then 6 short interactive requests (12 tokens, priority 1); 3 batch
// slots, int8 paged KV. The same requests are served four ways:
//
//   fifo / 1 token    — the pre-scheduler baseline: FIFO admission,
//                       token-by-token prefill;
//   fifo / chunked    — FIFO with 32-token prefill chunks: long prompts
//                       finish prefill in ~1/32nd the steps, so the slots
//                       (and the shorts queued behind them) free sooner;
//   priority / chunked — strict priority: the shorts jump the queue;
//   fair-share / chunked — deficit round robin (quantum 8): the longs are
//                       metered beside the shorts instead of spending a
//                       full chunk per step.
//
// Reported per policy: p50/p95 short-request TTFT in steps (deterministic)
// and wall ms, makespan, and the engine's per-priority stats. Asserted
// (exit 1): every policy returns bitwise identical tokens; chunked prefill
// cuts the shorts' p50 step-TTFT vs the token-by-token baseline; priority
// and fair-share cut it further or equal vs FIFO order.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "eval/schemes.h"
#include "llm/scheduler.h"
#include "llm/serving_engine.h"

namespace {

using namespace opal;

struct PolicyResult {
  std::string name;
  std::vector<std::vector<std::size_t>> tokens;  // per request
  std::vector<std::size_t> short_ttft_steps;
  std::vector<double> short_ttft_ms;
  std::size_t steps = 0;
  double seconds = 0.0;
  ServingEngine::Stats stats;
};

template <typename T>
T percentile(std::vector<T> values, double p) {
  std::sort(values.begin(), values.end());
  const std::size_t idx = std::min(
      values.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(values.size())));
  return values[idx];
}

PolicyResult serve(const std::shared_ptr<const PreparedModel>& model,
                   ServingConfig cfg, std::string name,
                   const std::vector<Request>& requests,
                   std::size_t n_long) {
  using clock = std::chrono::steady_clock;
  PolicyResult out;
  out.name = std::move(name);
  ServingEngine engine(model, cfg);
  std::vector<RequestId> ids;
  for (const auto& req : requests) ids.push_back(engine.submit(req));

  std::vector<bool> seen(requests.size(), false);
  const auto t0 = clock::now();
  while (engine.step() > 0) {
    ++out.steps;
    for (std::size_t r = n_long; r < requests.size(); ++r) {
      if (!seen[r] && engine.result(ids[r]).generated() > 0) {
        seen[r] = true;
        out.short_ttft_steps.push_back(out.steps);
        out.short_ttft_ms.push_back(
            std::chrono::duration<double, std::milli>(clock::now() - t0)
                .count());
      }
    }
  }
  out.seconds = std::chrono::duration<double>(clock::now() - t0).count();
  for (const RequestId id : ids) out.tokens.push_back(engine.result(id).tokens);
  out.stats = engine.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 3, 256), 7);
  calibrate_logit_scale(model, 24, 8);

  EngineConfig cfg;
  cfg.max_seq_len = 256;
  cfg.kv_block_size = 16;
  cfg.kv_mode = KvQuantMode::kInt8;  // gather cost makes chunking visible
  auto prepared = std::make_shared<const PreparedModel>(model, cfg);

  constexpr std::size_t kLongs = 2, kShorts = 6;
  std::vector<Request> requests;
  for (std::size_t r = 0; r < kLongs; ++r) {
    Request req;
    for (std::size_t i = 0; i < 160; ++i) {
      req.prompt.push_back((i * 13 + r) % 256);
    }
    req.max_new_tokens = 8;
    req.priority = 0;
    requests.push_back(std::move(req));
  }
  for (std::size_t r = 0; r < kShorts; ++r) {
    Request req;
    for (std::size_t i = 0; i < 12; ++i) {
      req.prompt.push_back((i * 29 + 7 * r + 3) % 256);
    }
    req.max_new_tokens = 8;
    req.priority = 1;
    requests.push_back(std::move(req));
  }

  ServingConfig base;
  base.max_batch = 3;  // the longs hold 2 slots; shorts rotate the third

  std::vector<PolicyResult> results;
  {
    ServingConfig c = base;
    c.scheduler = std::make_shared<FifoScheduler>();
    c.prefill_chunk_tokens = 1;
    results.push_back(serve(prepared, c, "fifo / 1 token", requests, kLongs));
  }
  {
    ServingConfig c = base;
    c.scheduler = std::make_shared<FifoScheduler>();
    c.prefill_chunk_tokens = 32;
    results.push_back(serve(prepared, c, "fifo / chunk 32", requests, kLongs));
  }
  {
    ServingConfig c = base;
    c.scheduler = std::make_shared<PriorityScheduler>();
    c.prefill_chunk_tokens = 32;
    results.push_back(
        serve(prepared, c, "priority / chunk 32", requests, kLongs));
  }
  {
    ServingConfig c = base;
    FairShareScheduler::Config fair;
    fair.quantum = 8;
    c.scheduler = std::make_shared<FairShareScheduler>(fair);
    c.prefill_chunk_tokens = 32;
    results.push_back(
        serve(prepared, c, "fair-share / q8 c32", requests, kLongs));
  }

  std::printf("%zu long (160-token prompt, prio 0) + %zu short (12-token "
              "prompt, prio 1) requests, %zu slots, int8 paged KV\n\n",
              kLongs, kShorts, base.max_batch);
  std::printf("%-20s %10s %10s %10s %10s %8s %9s\n", "policy", "ttft p50",
              "ttft p95", "p50 ms", "p95 ms", "steps", "total s");
  for (const auto& r : results) {
    std::printf("%-20s %7zu st %7zu st %10.1f %10.1f %8zu %9.2f\n",
                r.name.c_str(), percentile(r.short_ttft_steps, 0.5),
                percentile(r.short_ttft_steps, 0.95),
                percentile(r.short_ttft_ms, 0.5),
                percentile(r.short_ttft_ms, 0.95), r.steps, r.seconds);
  }
  {
    const std::string path = argc > 1 ? argv[1] : "BENCH_scheduler.json";
    std::ofstream json(path);
    json.precision(4);
    json << std::fixed << "{\n  \"bench\": \"scheduler\",\n"
         << "  \"policies\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      json << "    {\"policy\": \"" << r.name
           << "\", \"short_ttft_p50_steps\": "
           << percentile(r.short_ttft_steps, 0.5)
           << ", \"short_ttft_p95_steps\": "
           << percentile(r.short_ttft_steps, 0.95)
           << ", \"short_ttft_p50_ms\": " << percentile(r.short_ttft_ms, 0.5)
           << ", \"short_ttft_p95_ms\": " << percentile(r.short_ttft_ms, 0.95)
           << ", \"steps\": " << r.steps << ", \"wall_s\": " << r.seconds
           << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
  }

  std::printf("\nper-priority accounting (mean steps, from Stats::by_priority)"
              ":\n");
  for (const auto& r : results) {
    for (const auto& [prio, s] : r.stats.by_priority) {
      std::printf("  %-20s prio %d: %5zu tokens, queue-wait %5.1f, ttft "
                  "%5.1f\n",
                  r.name.c_str(), prio, s.tokens_served,
                  static_cast<double>(s.queue_wait_steps) /
                      static_cast<double>(std::max<std::size_t>(
                          s.first_decodes, 1)),
                  static_cast<double>(s.ttft_steps) /
                      static_cast<double>(std::max<std::size_t>(
                          s.first_tokens, 1)));
    }
  }

  // --- assertions (step-denominated: deterministic on any machine) ---
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].tokens != results[0].tokens) {
      std::printf("\nERROR: %s changed request outputs\n",
                  results[i].name.c_str());
      return 1;
    }
  }
  const std::size_t base_p50 = percentile(results[0].short_ttft_steps, 0.5);
  const std::size_t chunk_p50 = percentile(results[1].short_ttft_steps, 0.5);
  const std::size_t prio_p50 = percentile(results[2].short_ttft_steps, 0.5);
  const std::size_t fair_p50 = percentile(results[3].short_ttft_steps, 0.5);
  if (chunk_p50 >= base_p50) {
    std::printf("\nERROR: chunked prefill did not cut short-request TTFT "
                "(%zu vs %zu steps)\n", chunk_p50, base_p50);
    return 1;
  }
  if (prio_p50 > chunk_p50 || fair_p50 >= base_p50) {
    std::printf("\nERROR: priority (%zu) / fair-share (%zu) did not improve "
                "on fifo (%zu chunked, %zu token-by-token)\n",
                prio_p50, fair_p50, chunk_p50, base_p50);
    return 1;
  }
  std::printf("\nPASS: chunked prefill cut short-request p50 TTFT %zu -> %zu "
              "steps; priority %zu, fair-share %zu (fifo token-by-token "
              "baseline %zu); outputs bitwise identical across policies\n",
              base_p50, chunk_p50, prio_p50, fair_p50, base_p50);
  return 0;
}
