// Fig 8 reproduction: (a) energy of generating one token with Llama2-70B,
// decomposed into core energy / memory access / weight-buffer leakage /
// activation-buffer leakage, and (b) compute-core area, for the four
// devices {BF16, OWQ, OPAL-4/7, OPAL-3/5}.
#include <cstdio>
#include <vector>

#include "accel/device.h"

int main() {
  using namespace opal;
  const auto model = llama2_70b();
  const std::size_t seq = 1024;

  const std::vector<DeviceConfig> devices = {
      make_bf16_device(), make_owq_device(4), make_opal_device(4, 7, 4),
      make_opal_device(3, 5, 3)};

  std::printf("=== Fig 8(a): energy per generated token, Llama2-70B (seq "
              "%zu) ===\n", seq);
  std::printf("%-10s %9s %9s %9s %9s %9s %10s %8s\n", "Device", "Core(J)",
              "Mem(J)", "WleakJ", "AleakJ", "Total(J)", "Latency(s)",
              "INT%");
  std::vector<TokenReport> reports;
  for (const auto& dev : devices) {
    reports.push_back(simulate_token(dev, model, seq));
    const auto& r = reports.back();
    std::printf("%-10s %9.3f %9.3f %9.3f %9.3f %9.3f %10.2f %7.1f%%\n",
                r.device.c_str(), r.core_energy_j, r.mem_access_j,
                r.weight_leak_j, r.act_leak_j, r.total_j(), r.latency_s,
                100.0 * r.int_mac_fraction);
  }

  const double e_bf16 = reports[0].total_j();
  const double e_owq = reports[1].total_j();
  std::printf("\nSavings: OWQ vs BF16: %.1f%% | OPAL-4/7 vs OWQ/BF16: "
              "%.1f%%/%.1f%% | OPAL-3/5 vs OWQ/BF16: %.1f%%/%.1f%%\n",
              100.0 * (1.0 - e_owq / e_bf16),
              100.0 * (1.0 - reports[2].total_j() / e_owq),
              100.0 * (1.0 - reports[2].total_j() / e_bf16),
              100.0 * (1.0 - reports[3].total_j() / e_owq),
              100.0 * (1.0 - reports[3].total_j() / e_bf16));

  std::printf("\n=== Fig 8(b): compute-core area ===\n");
  for (const auto& dev : devices) {
    std::printf("%-10s %8.3f mm^2\n", dev.name.c_str(),
                device_core_area_mm2(dev));
  }
  const double a_bf16 = device_core_area_mm2(devices[0]);
  std::printf("Area reduction vs BF16/OWQ: OPAL-4/7 %.2fx, OPAL-3/5 "
              "%.2fx\n",
              a_bf16 / device_core_area_mm2(devices[2]),
              a_bf16 / device_core_area_mm2(devices[3]));

  std::printf(
      "\nPaper reference: OWQ saves 32.5%% vs BF16; OPAL-4/7 saves "
      "38.6%%/58.6%% vs OWQ/BF16; OPAL-3/5 saves 53.5%%/68.6%%; area "
      "reduction 2.4~3.1x; 1.98 s/token on Llama2-70B. Our BF16 baseline "
      "pays its full 4x DRAM traffic and latency, so its bar is relatively "
      "worse than the paper's (see EXPERIMENTS.md).\n");
  return 0;
}
