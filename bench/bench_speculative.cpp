// Speculative-decoding bench: how many tokens one model pass commits, and
// what drafting costs, on a repetitive vs a varied generation workload.
//
// Workloads (6 requests each, 32 generated tokens, fp32 paged KV, 4 slots,
// 8-token prefill chunks):
//   * repetitive — prompts built from a repeated 4-token motif, the
//     prompt-lookup (n-gram) drafter's home turf;
//   * varied     — the shared-prefix/distinct-tail prompt set the sampling
//     bench uses, decoded greedily under a repetition penalty so the
//     continuation never settles into a draftable cycle.
// Drafter rows per workload: none (baseline), n-gram, greedy-repeat, and
// the target model drafting for itself (ModelDrafter with draft == target).
// On the plain-greedy repetitive workload self-drafting accepts everything
// (in fp32 each draft IS the engine's next argmax) and tokens/burst hits
// the configured maximum — the verify machinery's ceiling, not a deployment
// speedup, since the draft model here costs as much as the target. On the
// penalized workload even self-drafting sheds accepts: the drafter argmaxes
// raw logits while the engine penalizes before argmax.
//
// Reported per row: wall time, engine steps, executed rows, committed
// tokens per verify burst, and draft accept rate. Persisted as
// BENCH_speculative.json (path = argv[1]).
//
// Asserted (exit 1):
//   * every speculative greedy stream is BITWISE the baseline stream of the
//     same workload — speculation must never change output;
//   * the self-drafting row commits > 1 token per model pass and finishes
//     in fewer engine steps than the baseline on both workloads.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "eval/schemes.h"
#include "llm/serving_engine.h"

namespace {

using namespace opal;

struct SpecRun {
  std::string name;
  std::vector<std::vector<std::size_t>> streams;  // per request
  double seconds = 0.0;
  ServingEngine::Stats stats;

  [[nodiscard]] double accept_rate() const {
    if (stats.spec_drafted == 0) return 0.0;
    return static_cast<double>(stats.spec_accepted) /
           static_cast<double>(stats.spec_drafted);
  }
};

SpecRun serve(const std::shared_ptr<const PreparedModel>& model,
              const ServingConfig& cfg, std::string name,
              const std::vector<Request>& requests) {
  SpecRun out;
  out.name = std::move(name);
  ServingEngine engine(model, cfg);
  std::vector<RequestId> ids;
  for (const auto& req : requests) ids.push_back(engine.submit(req));
  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.stats = engine.stats();
  for (const RequestId id : ids) {
    out.streams.push_back(engine.result(id).tokens);
  }
  return out;
}

std::vector<Request> repetitive_workload() {
  std::vector<Request> requests;
  for (std::size_t r = 0; r < 6; ++r) {
    Request req;
    // A 4-token motif repeated 5x: recent history always has a matching
    // suffix for prompt-lookup drafting to extend.
    for (std::size_t i = 0; i < 20; ++i) {
      req.prompt.push_back((31 * r + 7 * (i % 4) + 3) % 256);
    }
    req.max_new_tokens = 32;
    requests.push_back(std::move(req));
  }
  return requests;
}

std::vector<Request> varied_workload() {
  std::vector<std::size_t> prefix;
  for (std::size_t i = 0; i < 16; ++i) prefix.push_back((i * 11 + 5) % 256);
  std::vector<Request> requests;
  for (std::size_t r = 0; r < 6; ++r) {
    Request req;
    req.prompt = prefix;
    for (std::size_t i = 0; i < 4; ++i) {
      req.prompt.push_back((i * 29 + 7 * r + 3) % 256);
    }
    req.max_new_tokens = 32;
    // Greedy decode of the synthetic model converges to a repeated token,
    // which would make even this workload trivially draftable. Repetition
    // penalty (still deterministic greedy) keeps the continuation moving,
    // so repeat/n-gram drafts actually get rejected here.
    req.sampling.repetition_penalty = 1.3f;
    requests.push_back(std::move(req));
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 3, 256), 7);
  calibrate_logit_scale(model, 24, 8);

  EngineConfig cfg;
  cfg.max_seq_len = 128;
  cfg.kv_block_size = 16;
  auto prepared = std::make_shared<const PreparedModel>(model, cfg);

  ServingConfig base;
  base.max_batch = 4;
  base.prefill_chunk_tokens = 8;

  ServingConfig ngram = base;
  ngram.speculative.policy = DraftPolicy::kNgram;
  ngram.speculative.draft_tokens = 4;
  ServingConfig repeat = base;
  repeat.speculative.policy = DraftPolicy::kRepeat;
  repeat.speculative.draft_tokens = 4;
  ServingConfig self_draft = base;
  self_draft.speculative.policy = DraftPolicy::kModel;
  self_draft.speculative.draft_tokens = 4;
  self_draft.speculative.draft_model = prepared;

  const struct {
    const char* name;
    const ServingConfig* cfg;
  } rows[] = {{"none", &base},
              {"ngram", &ngram},
              {"repeat", &repeat},
              {"self-draft", &self_draft}};
  const struct {
    const char* name;
    std::vector<Request> requests;
  } workloads[] = {{"repetitive", repetitive_workload()},
                   {"varied", varied_workload()}};

  std::printf("6 requests x 32 generated per workload, 4 slots, fp32 paged "
              "KV, 8-token chunks, draft_tokens 4\n");

  bool ok = true;
  std::vector<std::vector<SpecRun>> all;  // [workload][row]
  for (const auto& workload : workloads) {
    std::printf("\n%s workload\n", workload.name);
    std::printf("%-12s %8s %10s %12s %12s %10s\n", "drafter", "steps",
                "rows run", "tok/burst", "accept rate", "total s");
    all.emplace_back();
    for (const auto& row : rows) {
      all.back().push_back(
          serve(prepared, *row.cfg, row.name, workload.requests));
      const SpecRun& run = all.back().back();
      std::printf("%-12s %8zu %10zu %12.2f %11.1f%% %10.3f\n",
                  run.name.c_str(), run.stats.steps,
                  run.stats.tokens_decoded, run.stats.tokens_per_burst(),
                  100.0 * run.accept_rate(), run.seconds);
      if (run.streams != all.back().front().streams) {
        std::printf("ERROR: %s/%s greedy streams diverged from baseline\n",
                    workload.name, run.name.c_str());
        ok = false;
      }
    }
    const SpecRun& self_run = all.back().back();
    const SpecRun& baseline = all.back().front();
    if (self_run.stats.tokens_per_burst() <= 1.0) {
      std::printf("ERROR: %s/self-draft committed <= 1 token per burst\n",
                  workload.name);
      ok = false;
    }
    if (self_run.stats.steps >= baseline.stats.steps) {
      std::printf("ERROR: %s/self-draft took as many steps as baseline\n",
                  workload.name);
      ok = false;
    }
  }

  const std::string path = argc > 1 ? argv[1] : "BENCH_speculative.json";
  std::ofstream json(path);
  json.precision(4);
  json << std::fixed << "{\n"
       << "  \"bench\": \"speculative\",\n"
       << "  \"config\": \"fp32 paged KV, 4 slots, chunk 8, draft_tokens "
          "4, 6x32 generated\",\n"
       << "  \"determinism\": \"" << (ok ? "pass" : "fail") << "\",\n"
       << "  \"workloads\": {\n";
  for (std::size_t w = 0; w < all.size(); ++w) {
    json << "    \"" << workloads[w].name << "\": {\n";
    for (std::size_t i = 0; i < all[w].size(); ++i) {
      const SpecRun& run = all[w][i];
      json << "      \"" << run.name << "\": {\"steps\": " << run.stats.steps
           << ", \"rows_executed\": " << run.stats.tokens_decoded
           << ", \"spec_bursts\": " << run.stats.spec_bursts
           << ", \"drafted\": " << run.stats.spec_drafted
           << ", \"accepted\": " << run.stats.spec_accepted
           << ", \"tokens_per_burst\": " << run.stats.tokens_per_burst()
           << ", \"accept_rate\": " << run.accept_rate()
           << ", \"seconds\": " << run.seconds << "}"
           << (i + 1 < all[w].size() ? "," : "") << "\n";
    }
    json << "    }" << (w + 1 < all.size() ? "," : "") << "\n";
  }
  json << "  }\n}\n";
  std::printf("\nwrote %s\n", path.c_str());

  if (!ok) return 1;
  const double best = all[0].back().stats.tokens_per_burst();
  std::printf("PASS: speculative greedy streams bitwise identical to "
              "baseline on both workloads; self-draft commits %.2f "
              "tokens/burst (repetitive)\n", best);
  return 0;
}
