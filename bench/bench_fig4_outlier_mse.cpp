// Fig 4 reproduction: relative MSE (normalized to the MinMax baseline) of
// MXINT and MX-OPAL at n = 1, 2, 4, 8 preserved outliers, measured on the
// activations of a decoder block of the Llama2-7B-eval model at b = 8 and
// b = 4, for the six sites Query/Key/Value/Proj/fc1/fc2. Also prints the
// Eq. (1) memory-overhead table shown in the Fig 4 insets.
#include <cstdio>
#include <memory>
#include <vector>

#include "eval/mse_analysis.h"
#include "quant/minmax.h"
#include "quant/mx_opal.h"
#include "quant/mxint.h"

namespace {

void run_panel(const opal::SiteCapture& capture, int bits) {
  using namespace opal;
  std::printf("--- b = %d (sign + mantissa bits) ---\n", bits);
  std::printf("%-16s %7s %7s %7s %7s %7s %7s %8s\n", "Quantizer", "Query",
              "Key", "Value", "Proj", "fc1", "fc2", "Avg");

  const MinMaxQuantizer baseline(128, bits);
  std::vector<std::pair<std::string, std::unique_ptr<Quantizer>>> quants;
  quants.emplace_back("MXINT",
                      std::make_unique<MxIntQuantizer>(128, bits));
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    quants.emplace_back("MX-OPAL (n=" + std::to_string(n) + ")",
                        std::make_unique<MxOpalQuantizer>(128, bits, n));
  }

  for (const auto& [name, quant] : quants) {
    const auto series =
        relative_mse_series(capture, *quant, baseline, name);
    std::printf("%-16s", name.c_str());
    for (const double v : series.per_site) std::printf(" %7.3f", v);
    std::printf(" %8.3f\n", series.average);
  }
  std::printf("(MinMax baseline = 1.0 by definition)\n");

  std::printf("OMEM (Eq. 1):");
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    std::printf("  n=%zu: %.3f", static_cast<std::size_t>(n),
                mx_opal_memory_overhead(128, n, bits));
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  using namespace opal;
  std::printf("=== Fig 4: impact of preserving outliers on quantization "
              "noise ===\n");
  SyntheticModel model(scaled_for_eval(llama2_7b(), 256, 3, 128), 20, 0.02f);
  calibrate_logit_scale(model, 24, 5);
  // The paper uses the 20th block of 32; we capture the last block of the
  // scaled model (deepest available).
  const auto capture = capture_layer_activations(
      model, model.config().n_layers - 1, 48, 4);

  run_panel(capture, 8);
  run_panel(capture, 4);

  std::printf("Paper reference: MXINT averages 3.79x (b=8) and 8.21x (b=4) "
              "the MinMax MSE; MX-OPAL reaches ~1x at n=4, with OMEM 1.027 "
              "(b=8) and 1.092 (b=4).\n");
  return 0;
}
