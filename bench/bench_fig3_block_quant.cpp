// Fig 3 reproduction: one 128-element activation block (bulk + one large
// outlier, mimicking the input to self_attn.o_proj in Llama2-7B layer 2)
// quantized by 2-bit MinMax, MXINT2, and MX-OPAL2. Prints the quantization
// grids and per-quantizer MSE; MXINT collapses the bulk to zero, MX-OPAL
// moves the shared scale down to the bulk.
#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "quant/minmax.h"
#include "quant/mx_opal.h"
#include "quant/mxint.h"

namespace {

void report(const char* name, const opal::Quantizer& quant,
            const std::vector<float>& block) {
  std::vector<float> out(block.size());
  quant.quantize_dequantize(block, out);
  std::set<float> levels(out.begin(), out.end());
  std::size_t zeros = 0;
  for (const float v : out) zeros += v == 0.0f;
  std::printf("%-12s  MSE %.6f   distinct levels %2zu   zeros %3zu/%zu\n",
              name, opal::mse(block, out), levels.size(), zeros,
              out.size());
}

}  // namespace

int main() {
  // The Fig 3(a) distribution: tight bulk with one outlier far away.
  opal::Rng rng = opal::make_rng(2024);
  std::vector<float> block(128);
  opal::fill_laplace(rng, block, 0.35f);
  block[41] = 7.8f;  // the outlier Fig 3 marks

  std::printf("=== Fig 3: quantizing a 128-element block with one outlier "
              "===\n");
  const auto minmax = std::max_element(block.begin(), block.end());
  std::printf("block: min %.3f max %.3f (outlier at index 41)\n\n",
              *std::min_element(block.begin(), block.end()), *minmax);

  report("2-bit MinMax", opal::MinMaxQuantizer(128, 2), block);
  report("MXINT2", opal::MxIntQuantizer(128, 2), block);
  report("MX-OPAL2", opal::MxOpalQuantizer(128, 2, 1), block);

  // Show the MX-OPAL mechanics: preserved outlier + lowered shared scale.
  opal::MxOpalQuantizer opal2(128, 2, 1);
  const auto qt = opal2.encode(block);
  std::printf("\nMX-OPAL2 shared scale exponent: %d (MXINT2 would use %d)\n",
              qt.block_scale(0),
              opal::select_shared_scale(block, 1));
  std::printf("preserved outlier: index %u value %.3f (bfloat16)\n",
              qt.blocks[0].outliers[0].index,
              qt.blocks[0].outliers[0].value.to_float());
  std::printf("\nPaper reference: MinMax spreads levels across the outlier "
              "range; MXINT underflows the bulk; MX-OPAL keeps the outlier "
              "in bf16 and quantizes the bulk on a finer power-of-two "
              "grid.\n");
  return 0;
}
