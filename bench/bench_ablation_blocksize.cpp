// Ablation (DESIGN.md §5): the block size k / preserved outliers n design
// space. Sweeps MX-OPAL over k in {32..512} x n in {0..8} on LLM-like
// activations, reporting quantization MSE against the Eq. (1) memory
// overhead — the tradeoff behind the paper's choice of k=128, n=4.
#include <cstdio>
#include <vector>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "quant/mx_opal.h"
#include "quant/mxint.h"

int main() {
  using namespace opal;
  const int bits = 4;
  ActivationModel acts(42, 4096, 0.01f);
  Matrix data = acts.sample_matrix(16);

  std::printf("=== Ablation: block size k and preserved outliers n "
              "(MX-OPAL%d) ===\n", bits);
  std::printf("%6s %4s %14s %10s\n", "k", "n", "MSE", "OMEM");
  std::vector<float> out(data.size());
  for (const std::size_t k : {32u, 64u, 128u, 256u, 512u}) {
    for (const std::size_t n : {0u, 1u, 2u, 4u, 8u}) {
      if (n >= k) continue;
      const MxOpalQuantizer quant(k, bits, n);
      quant.quantize_dequantize(data.flat(), out);
      std::printf("%6zu %4zu %14.8f %10.3f\n", static_cast<std::size_t>(k),
                  static_cast<std::size_t>(n), mse(data.flat(), out),
                  mx_opal_memory_overhead(k, n, bits));
    }
    std::printf("\n");
  }

  std::printf("Takeaway: larger blocks amortize scale storage but see more "
              "outliers per block; n=4 at k=128 buys most of the MSE "
              "reduction for ~9%% overhead at b=4 — the paper's operating "
              "point.\n");
  return 0;
}
