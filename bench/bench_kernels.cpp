// Kernel-layer micro bench: scalar reference vs the runtime-dispatched SIMD
// table (common/kernels.h) on the serving hot path's shapes — GEMV, dot, the
// fused dequantize-dot kernels per kv_mode, and attention score/accumulate
// over realistic block-segment shapes — plus the in-process serving headline
// numbers (fifo chunk-1 vs chunk-8 short-request p50 TTFT steps, decode
// tokens/s) that bench_scheduler/bench_sampling report, persisted together
// as BENCH_kernels.json (path = argv[1], default ./BENCH_kernels.json) to
// start the cross-PR perf trajectory.
//
// Asserted (exit 1): every dispatched kernel matches the scalar reference
// within reduction-reorder tolerance; the fused dequant kernels match
// gather-then-dot BITWISE within each table; with a SIMD table present, the
// dispatched GEMV is not slower than scalar.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/kernels.h"
#include "eval/schemes.h"
#include "llm/scheduler.h"
#include "llm/serving_engine.h"

namespace {

using namespace opal;
using clock_type = std::chrono::steady_clock;

std::uint64_t lcg = 0x2545f4914f6cdd1dull;
float frand() {
  lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<float>((lcg >> 33) & 0xffffff) / 0x1000000p0f * 2.0f -
         1.0f;
}

std::vector<float> rand_vec(std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = frand();
  return v;
}

std::vector<std::int8_t> rand_codes(std::size_t n) {
  std::vector<std::int8_t> v(n);
  for (auto& c : v) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const int q = static_cast<int>((lcg >> 40) & 0xff) - 128;
    c = static_cast<std::int8_t>(q == -128 ? -127 : q);
  }
  return v;
}

float g_sink = 0.0f;  // defeats dead-code elimination across timed calls

template <typename F>
double us_per_call(F&& f, int iters) {
  f();  // warmup
  const auto t0 = clock_type::now();
  for (int i = 0; i < iters; ++i) f();
  return std::chrono::duration<double, std::micro>(clock_type::now() - t0)
             .count() /
         iters;
}

bool g_ok = true;
void check(bool cond, const char* what) {
  if (!cond) {
    std::printf("FAIL: %s\n", what);
    g_ok = false;
  }
}

// --- serving headline numbers (in-process) ----------------------------------

struct ServingHeadline {
  std::size_t chunk1_ttft_p50_steps = 0;
  std::size_t chunk8_ttft_p50_steps = 0;
  double decode_tokens_per_s = 0.0;
};

ServingHeadline serving_headline() {
  SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 3, 256), 7);
  calibrate_logit_scale(model, 24, 8);
  EngineConfig cfg;
  cfg.max_seq_len = 128;
  cfg.kv_block_size = 16;
  cfg.kv_mode = KvQuantMode::kInt8;
  auto prepared = std::make_shared<const PreparedModel>(model, cfg);

  std::vector<Request> requests;
  for (std::size_t r = 0; r < 2; ++r) {  // long prompts hog the slots first
    Request req;
    for (std::size_t i = 0; i < 64; ++i) req.prompt.push_back((i * 13 + r) % 256);
    req.max_new_tokens = 8;
    requests.push_back(std::move(req));
  }
  for (std::size_t r = 0; r < 4; ++r) {  // then short interactive requests
    Request req;
    for (std::size_t i = 0; i < 8; ++i) {
      req.prompt.push_back((i * 29 + 7 * r + 3) % 256);
    }
    req.max_new_tokens = 8;
    requests.push_back(std::move(req));
  }

  ServingHeadline out;
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{8}}) {
    ServingConfig scfg;
    scfg.max_batch = 3;
    scfg.scheduler = std::make_shared<FifoScheduler>();
    scfg.prefill_chunk_tokens = chunk;
    ServingEngine engine(prepared, scfg);
    std::vector<RequestId> ids;
    for (const auto& req : requests) ids.push_back(engine.submit(req));
    std::vector<std::size_t> short_ttft;
    std::vector<bool> seen(requests.size(), false);
    std::size_t steps = 0, decodes = 0, n;
    const auto t0 = clock_type::now();
    while ((n = engine.step()) > 0) {
      ++steps;
      decodes += n;
      for (std::size_t r = 2; r < requests.size(); ++r) {
        if (!seen[r] && engine.result(ids[r]).generated() > 0) {
          seen[r] = true;
          short_ttft.push_back(steps);
        }
      }
    }
    const double sec =
        std::chrono::duration<double>(clock_type::now() - t0).count();
    std::sort(short_ttft.begin(), short_ttft.end());
    const std::size_t p50 = short_ttft[short_ttft.size() / 2];
    if (chunk == 1) {
      out.chunk1_ttft_p50_steps = p50;
    } else {
      out.chunk8_ttft_p50_steps = p50;
      out.decode_tokens_per_s = static_cast<double>(decodes) / sec;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const KernelOps& scalar = scalar_kernels();
  const KernelOps* simd = simd_kernels();
  const KernelOps& dispatched = simd != nullptr ? *simd : scalar;
  std::printf("kernel dispatch: %s (scalar reference always compiled)\n\n",
              dispatched.name);

  // --- parity ---------------------------------------------------------------
  {
    const std::size_t n = 1037;  // vector body + tail
    const auto a = rand_vec(n), b = rand_vec(n);
    const float got = dispatched.dot(a.data(), b.data(), n);
    const float want = scalar.dot(a.data(), b.data(), n);
    check(std::fabs(got - want) <= 1e-4f * (1.0f + std::fabs(want)),
          "dispatched dot within tolerance of scalar");

    const auto codes = rand_codes(n);
    const float s = 0.0173f;
    std::vector<float> dec(n);
    for (std::size_t i = 0; i < n; ++i) {
      dec[i] = static_cast<float>(codes[i]) * s;
    }
    for (const KernelOps* ops : {&scalar, &dispatched}) {
      check(ops->dequant_dot_int8(a.data(), codes.data(), n, s) ==
                ops->dot(a.data(), dec.data(), n),
            "fused int8 dequant-dot bitwise == gather-then-dot");
      std::vector<float> lg(n);
      for (std::size_t i = 0; i < n; ++i) {
        lg[i] = kv_decode_log2(codes[i], 2);
      }
      check(ops->dequant_dot_log2(a.data(), codes.data(), n, 2) ==
                ops->dot(a.data(), lg.data(), n),
            "fused log2 dequant-dot bitwise == gather-then-dot");
    }
    std::printf("parity: dispatched-vs-scalar tolerance and fused-vs-gather "
                "bitwise checks %s\n\n",
                g_ok ? "PASS" : "FAIL");
  }

  // --- micro timings --------------------------------------------------------
  std::printf("%-26s %12s %12s %9s\n", "kernel", "scalar us", "dispatch us",
              "speedup");
  auto row = [](const char* name, double us_scalar, double us_dispatched) {
    std::printf("%-26s %12.2f %12.2f %8.2fx\n", name, us_scalar,
                us_dispatched, us_scalar / us_dispatched);
    return us_scalar / us_dispatched;
  };

  // GEMV at a serving-layer shape (wo projection of a d_model=512 model).
  const std::size_t rows = 512, cols = 512;
  const auto w = rand_vec(rows * cols);
  const auto x = rand_vec(cols);
  std::vector<float> y(rows);
  const double gemv_scalar = us_per_call(
      [&] { scalar.matvec(w.data(), rows, cols, x.data(), y.data()); }, 200);
  const double gemv_simd = us_per_call(
      [&] { dispatched.matvec(w.data(), rows, cols, x.data(), y.data()); },
      200);
  g_sink += y[0];
  const double gemv_speedup = row("gemv 512x512", gemv_scalar, gemv_simd);
  const double gemv_gflops_scalar =
      2.0 * static_cast<double>(rows * cols) / gemv_scalar / 1e3;
  const double gemv_gflops_simd =
      2.0 * static_cast<double>(rows * cols) / gemv_simd / 1e3;

  const std::size_t n = 4096;
  const auto a = rand_vec(n), b = rand_vec(n);
  const double dot_scalar =
      us_per_call([&] { g_sink += scalar.dot(a.data(), b.data(), n); }, 2000);
  const double dot_simd = us_per_call(
      [&] { g_sink += dispatched.dot(a.data(), b.data(), n); }, 2000);
  const double dot_speedup = row("dot 4096", dot_scalar, dot_simd);

  const auto codes = rand_codes(n);
  const double i8_scalar = us_per_call(
      [&] { g_sink += scalar.dequant_dot_int8(a.data(), codes.data(), n,
                                              0.01f); },
      2000);
  const double i8_simd = us_per_call(
      [&] { g_sink += dispatched.dequant_dot_int8(a.data(), codes.data(), n,
                                                  0.01f); },
      2000);
  const double i8_speedup = row("dequant-dot int8 4096", i8_scalar, i8_simd);

  const double lg_scalar = us_per_call(
      [&] { g_sink += scalar.dequant_dot_log2(a.data(), codes.data(), n, 2); },
      2000);
  const double lg_simd = us_per_call(
      [&] { g_sink += dispatched.dequant_dot_log2(a.data(), codes.data(), n,
                                                  2); },
      2000);
  const double lg_speedup = row("dequant-dot log2 4096", lg_scalar, lg_simd);

  // Attend over realistic paged-KV segment shapes: context 256 in 16-row
  // blocks (16 segments), d_model 128, d_head 64, scores then weighted sum.
  const std::size_t segs = 16, seg_rows = 16, d_model = 128, d_head = 64;
  const auto kv = rand_vec(segs * seg_rows * d_model);
  const auto kvc = rand_codes(segs * seg_rows * d_model);
  const auto q = rand_vec(d_head);
  const auto wts = rand_vec(segs * seg_rows);
  std::vector<float> scores(segs * seg_rows), z(d_head);
  auto attend_fp32 = [&](const KernelOps& ops) {
    std::fill(z.begin(), z.end(), 0.0f);
    for (std::size_t sg = 0; sg < segs; ++sg) {
      ops.attend_scores(q.data(), kv.data() + sg * seg_rows * d_model,
                        seg_rows, d_model, d_head, 0.125f,
                        scores.data() + sg * seg_rows);
      ops.attend_accum(wts.data() + sg * seg_rows,
                       kv.data() + sg * seg_rows * d_model, seg_rows, d_model,
                       d_head, z.data());
    }
    g_sink += z[0];
  };
  auto attend_fused_int8 = [&](const KernelOps& ops) {
    std::fill(z.begin(), z.end(), 0.0f);
    for (std::size_t sg = 0; sg < segs; ++sg) {
      ops.dequant_scores_int8(q.data(), kvc.data() + sg * seg_rows * d_model,
                              seg_rows, d_model, d_head, 0.01f, 0.125f,
                              scores.data() + sg * seg_rows);
      ops.dequant_accum_int8(wts.data() + sg * seg_rows,
                             kvc.data() + sg * seg_rows * d_model, seg_rows,
                             d_model, d_head, 0.01f, z.data());
    }
    g_sink += z[0];
  };
  auto attend_fused_log2 = [&](const KernelOps& ops) {
    std::fill(z.begin(), z.end(), 0.0f);
    for (std::size_t sg = 0; sg < segs; ++sg) {
      ops.dequant_scores_log2(q.data(), kvc.data() + sg * seg_rows * d_model,
                              seg_rows, d_model, d_head, 2, 0.125f,
                              scores.data() + sg * seg_rows);
      ops.dequant_accum_log2(wts.data() + sg * seg_rows,
                             kvc.data() + sg * seg_rows * d_model, seg_rows,
                             d_model, d_head, 2, z.data());
    }
    g_sink += z[0];
  };
  const double at_scalar =
      us_per_call([&] { attend_fp32(scalar); }, 500);
  const double at_simd = us_per_call([&] { attend_fp32(dispatched); }, 500);
  const double attend_speedup =
      row("attend fp32 16x16seg", at_scalar, at_simd);
  const double at8_scalar =
      us_per_call([&] { attend_fused_int8(scalar); }, 500);
  const double at8_simd =
      us_per_call([&] { attend_fused_int8(dispatched); }, 500);
  const double attend_i8_speedup =
      row("attend int8 fused", at8_scalar, at8_simd);
  const double atl_scalar =
      us_per_call([&] { attend_fused_log2(scalar); }, 500);
  const double atl_simd =
      us_per_call([&] { attend_fused_log2(dispatched); }, 500);
  const double attend_lg_speedup =
      row("attend log2 fused", atl_scalar, atl_simd);

  if (simd != nullptr) {
    check(gemv_speedup >= 1.0, "dispatched GEMV not slower than scalar");
  }

  // --- serving headline numbers --------------------------------------------
  const ServingHeadline sh = serving_headline();
  std::printf("\nserving headline (int8 paged KV, fifo): short-request p50 "
              "TTFT %zu steps @ chunk 1 -> %zu steps @ chunk 8; decode "
              "%.1f tokens/s\n",
              sh.chunk1_ttft_p50_steps, sh.chunk8_ttft_p50_steps,
              sh.decode_tokens_per_s);

  // --- persist --------------------------------------------------------------
  const std::string path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  std::ofstream json(path);
  json.precision(4);
  json << std::fixed << "{\n"
       << "  \"bench\": \"kernels\",\n"
       << "  \"dispatch\": \"" << dispatched.name << "\",\n"
       << "  \"parity\": \"" << (g_ok ? "pass" : "fail") << "\",\n"
       << "  \"kernels\": {\n"
       << "    \"gemv_512x512\": {\"scalar_us\": " << gemv_scalar
       << ", \"dispatched_us\": " << gemv_simd << ", \"scalar_gflops\": "
       << gemv_gflops_scalar << ", \"dispatched_gflops\": "
       << gemv_gflops_simd << ", \"speedup\": " << gemv_speedup << "},\n"
       << "    \"dot_4096\": {\"scalar_us\": " << dot_scalar
       << ", \"dispatched_us\": " << dot_simd << ", \"speedup\": "
       << dot_speedup << "},\n"
       << "    \"dequant_dot_int8_4096\": {\"scalar_us\": " << i8_scalar
       << ", \"dispatched_us\": " << i8_simd << ", \"speedup\": "
       << i8_speedup << "},\n"
       << "    \"dequant_dot_log2_4096\": {\"scalar_us\": " << lg_scalar
       << ", \"dispatched_us\": " << lg_simd << ", \"speedup\": "
       << lg_speedup << "},\n"
       << "    \"attend_fp32_segments\": {\"scalar_us\": " << at_scalar
       << ", \"dispatched_us\": " << at_simd << ", \"speedup\": "
       << attend_speedup << "},\n"
       << "    \"attend_int8_fused_segments\": {\"scalar_us\": " << at8_scalar
       << ", \"dispatched_us\": " << at8_simd << ", \"speedup\": "
       << attend_i8_speedup << "},\n"
       << "    \"attend_log2_fused_segments\": {\"scalar_us\": " << atl_scalar
       << ", \"dispatched_us\": " << atl_simd << ", \"speedup\": "
       << attend_lg_speedup << "}\n"
       << "  },\n"
       << "  \"serving\": {\n"
       << "    \"fifo_chunk1_short_ttft_p50_steps\": "
       << sh.chunk1_ttft_p50_steps << ",\n"
       << "    \"fifo_chunk8_short_ttft_p50_steps\": "
       << sh.chunk8_ttft_p50_steps << ",\n"
       << "    \"decode_tokens_per_s\": " << sh.decode_tokens_per_s << "\n"
       << "  }\n"
       << "}\n";
  std::printf("\nwrote %s\n", path.c_str());

  if (g_ok) {
    std::printf("PASS: parity checks clean; dispatched GEMV %.2fx scalar\n",
                gemv_speedup);
    return 0;
  }
  return 1;
}
