// Profile bench: exercises the always-on performance-attribution layer end
// to end and persists its three report surfaces to BENCH_profile.json
// (argv[1] overrides the path).
//
// Sections:
//   * per-kernel table — a closed-loop serving run per kv_mode (fp32 /
//     int8 / log2) under ServingConfig::profile, reporting call counts,
//     MAC-shaped element counts, and wall time per KernelOps entry. The
//     table shifts with the mode: fp32 attends through attend_scores/
//     attend_accum, the quantized modes through their fused dequant
//     kernels — the profiler is how that substitution is made visible.
//   * per-layer breakdown — the same runs' norm/qkv/attend/ffn phase split,
//     per layer and aggregated (logits accrues model-level only).
//   * drift summary — the int8 run is traced (opal.step_trace/v2) and its
//     measured step wall times audited against the device model's
//     predicted latency (accel/drift.h) on the BF16, OWQ-W4, and OPAL
//     presets: run ratio, per-step percentiles, compute/memory-bound split.
//
// Asserted (exit 1):
//   * profiler-off overhead is structurally zero: with profile off, the
//     active kernel dispatch table is the very pointer resolved before any
//     engine existed — the timing wrapper is not installed, so the hot
//     path carries zero added instructions (and destroying a profiled
//     engine restores that same pointer);
//   * profiled outputs are bitwise identical to silent outputs in every
//     kv_mode (observes-never-steers, same contract as tracing);
//   * the profile.* registry counters mirror the engine's KernelProfile
//     exactly, and the Prometheus rendering exposes them;
//   * every device's drift ratio is finite and positive, with at least one
//     step audited.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "accel/device.h"
#include "accel/drift.h"
#include "accel/replay.h"
#include "common/kernel_profiler.h"
#include "common/kernels.h"
#include "llm/engine.h"
#include "llm/scheduler.h"
#include "llm/serving_engine.h"
#include "llm/synthetic.h"

namespace {

using namespace opal;

/// Closed-loop workload: everything submitted up front, stepped to drain.
/// Mixed prompt lengths so chunked prefill, decode, and batch churn all
/// show up in the kernel mix.
std::vector<Request> workload() {
  std::vector<Request> reqs;
  for (std::size_t r = 0; r < 6; ++r) {
    Request q;
    const std::size_t prompt_len = 8 + 9 * r;  // 8 .. 53
    for (std::size_t i = 0; i < prompt_len; ++i) {
      q.prompt.push_back((i * 37 + 11 * r + 5) % 256);
    }
    q.max_new_tokens = 12;
    reqs.push_back(std::move(q));
  }
  return reqs;
}

struct Run {
  std::vector<std::vector<std::size_t>> tokens;  // per request
  KernelProfile profile;
  ServingEngine::Stats stats;
  MetricsRegistry::Snapshot snap;
  StepTrace trace;
};

Run run(const std::shared_ptr<const PreparedModel>& model, bool profile,
        bool trace = false) {
  ServingConfig cfg;
  cfg.max_batch = 4;
  cfg.prefill_chunk_tokens = 16;
  cfg.scheduler = std::make_shared<FifoScheduler>();
  cfg.profile = profile;
  cfg.trace = trace;

  ServingEngine engine(model, cfg);
  std::vector<RequestId> ids;
  for (const Request& q : workload()) ids.push_back(engine.submit(q));
  while (engine.step() > 0) {
  }

  Run out;
  for (const RequestId id : ids) {
    out.tokens.push_back(engine.result(id).tokens);
  }
  if (profile) out.profile = engine.profile();
  out.stats = engine.stats();
  out.snap = engine.metrics();
  if (trace) out.trace = step_trace_from_tracer(engine.tracer());
  return out;
}

const char* mode_name(KvQuantMode mode) {
  switch (mode) {
    case KvQuantMode::kFp32:
      return "fp32";
    case KvQuantMode::kInt8:
      return "int8";
    case KvQuantMode::kLog2:
      return "log2";
  }
  return "?";
}

void emit_phases(std::ofstream& json, const char* indent,
                 const std::array<PhaseStat, kLayerPhaseCount>& phases) {
  json << "{";
  for (std::size_t p = 0; p < kLayerPhaseCount; ++p) {
    const PhaseStat& ps = phases[p];
    json << (p == 0 ? "" : ", ") << "\""
         << to_string(static_cast<LayerPhase>(p)) << "\": {\"calls\": "
         << ps.calls << ", \"ns\": " << ps.ns << "}";
  }
  json << "}";
  (void)indent;
}

}  // namespace

int main(int argc, char** argv) {
  // Pin the dispatch table before anything else: this is the pointer the
  // zero-overhead assertion compares against, and the table the profiler
  // must capture and restore.
  const KernelOps* resolved = &kernels();

  SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 3, 256), 7);
  calibrate_logit_scale(model, 24, 8);

  const std::string path = argc > 1 ? argv[1] : "BENCH_profile.json";
  std::ofstream json(path);
  json << "{\n  \"bench\": \"profile\",\n  \"kernel_table\": \""
       << resolved->name << "\",\n  \"modes\": [\n";

  const KvQuantMode modes[] = {KvQuantMode::kFp32, KvQuantMode::kInt8,
                               KvQuantMode::kLog2};
  bool failed = false;
  StepTrace drift_trace;  // int8 run, audited below

  for (std::size_t mi = 0; mi < 3; ++mi) {
    const KvQuantMode mode = modes[mi];
    EngineConfig ecfg;
    ecfg.max_seq_len = 256;
    ecfg.kv_block_size = 16;
    ecfg.kv_mode = mode;
    auto prepared = std::make_shared<const PreparedModel>(model, ecfg);

    const Run silent = run(prepared, /*profile=*/false);
    if (&kernels() != resolved ||
        std::string(kernels().name) == "profiled") {
      std::printf("ERROR: %s silent run disturbed the kernel dispatch "
                  "table (profiler-off overhead is not zero)\n",
                  mode_name(mode));
      failed = true;
    }
    const bool want_trace = mode == KvQuantMode::kInt8;
    const Run profiled = run(prepared, /*profile=*/true, want_trace);
    if (want_trace) drift_trace = profiled.trace;
    if (&kernels() != resolved) {
      std::printf("ERROR: %s profiled engine did not restore the kernel "
                  "dispatch table on destruction\n",
                  mode_name(mode));
      failed = true;
    }

    // Observes-never-steers: wrapping every kernel in a timer must not
    // change a single output bit.
    if (profiled.tokens != silent.tokens) {
      std::printf("ERROR: %s profiled outputs diverge from silent\n",
                  mode_name(mode));
      failed = true;
    }

    const KernelProfile& prof = profiled.profile;
    if (prof.total_kernel_calls() == 0) {
      std::printf("ERROR: %s profiled run recorded no kernel calls\n",
                  mode_name(mode));
      failed = true;
    }
    // The registry surface must be the same numbers: each profile.kernel.*
    // counter equals its KernelProfile row, and Prometheus renders them.
    for (std::size_t k = 0; k < kKernelKindCount; ++k) {
      const std::string base =
          "profile.kernel." + to_string(static_cast<KernelKind>(k));
      if (profiled.snap.counter_value(base + ".calls") !=
              prof.kernels[k].calls ||
          profiled.snap.counter_value(base + ".elems") !=
              prof.kernels[k].elems) {
        std::printf("ERROR: %s registry counter %s diverges from profile\n",
                    mode_name(mode), base.c_str());
        failed = true;
      }
    }
    if (profiled.snap.to_prometheus().find(
            "profile_kernel_matvec_calls_total") == std::string::npos) {
      std::printf("ERROR: profile.* counters missing from Prometheus "
                  "rendering\n");
      failed = true;
    }
    // The kernel mix must match the KV mode: fused dequant kernels only
    // (and always) appear when the cache is quantized.
    const std::uint64_t fp_attend =
        prof.kernels[static_cast<std::size_t>(KernelKind::kAttendScores)]
            .calls;
    const std::uint64_t dq_attend =
        prof.kernels[static_cast<std::size_t>(KernelKind::kDequantScoresInt8)]
            .calls +
        prof.kernels[static_cast<std::size_t>(KernelKind::kDequantScoresLog2)]
            .calls;
    if (mode == KvQuantMode::kFp32 ? (fp_attend == 0 || dq_attend != 0)
                                   : (dq_attend == 0)) {
      std::printf("ERROR: %s kernel mix does not match the KV mode "
                  "(attend %llu, dequant %llu)\n",
                  mode_name(mode),
                  static_cast<unsigned long long>(fp_attend),
                  static_cast<unsigned long long>(dq_attend));
      failed = true;
    }

    // --- report ---
    std::printf("kv_mode=%s: %llu kernel calls, %.1f ms attributed, "
                "%zu steps\n",
                mode_name(mode),
                static_cast<unsigned long long>(prof.total_kernel_calls()),
                static_cast<double>(prof.total_kernel_ns()) * 1e-6,
                profiled.stats.steps);
    std::printf("  %-22s %10s %14s %10s\n", "kernel", "calls", "elems",
                "ms");
    json << "    {\"kv_mode\": \"" << mode_name(mode) << "\", \"steps\": "
         << profiled.stats.steps << ",\n     \"kernels\": [";
    bool first = true;
    for (std::size_t k = 0; k < kKernelKindCount; ++k) {
      const KernelStat& ks = prof.kernels[k];
      const std::string name = to_string(static_cast<KernelKind>(k));
      if (ks.calls != 0) {
        std::printf("  %-22s %10llu %14llu %10.2f\n", name.c_str(),
                    static_cast<unsigned long long>(ks.calls),
                    static_cast<unsigned long long>(ks.elems),
                    static_cast<double>(ks.ns) * 1e-6);
      }
      json << (first ? "" : ",") << "\n      {\"kind\": \"" << name
           << "\", \"calls\": " << ks.calls << ", \"elems\": " << ks.elems
           << ", \"ns\": " << ks.ns << "}";
      first = false;
    }
    json << "\n     ],\n     \"phases\": ";
    emit_phases(json, "     ", prof.phases);
    json << ",\n     \"layers\": [";
    std::printf("  %-8s %10s %10s %10s %10s\n", "layer", "norm ms",
                "qkv ms", "attend ms", "ffn ms");
    for (std::size_t l = 0; l < prof.layers.size(); ++l) {
      const auto& row = prof.layers[l];
      auto ms = [&row](LayerPhase p) {
        return static_cast<double>(
                   row[static_cast<std::size_t>(p)].ns) *
               1e-6;
      };
      std::printf("  %-8zu %10.2f %10.2f %10.2f %10.2f\n", l,
                  ms(LayerPhase::kNorm), ms(LayerPhase::kQkv),
                  ms(LayerPhase::kAttend), ms(LayerPhase::kFfn));
      json << (l == 0 ? "" : ",") << "\n      ";
      emit_phases(json, "      ", row);
    }
    json << "\n     ]}" << (mi + 1 < 3 ? "," : "") << "\n";
    std::printf("\n");
  }
  json << "  ],\n  \"drift\": [\n";

  // --- drift: measured step wall time vs device-model prediction on the
  // int8 trace, per accelerator preset ---
  const std::vector<DeviceConfig> devices = {
      make_bf16_device(), make_owq_device(4), make_opal_device(4, 7, 4)};
  std::printf("drift (int8 trace, %zu steps)\n", drift_trace.steps.size());
  std::printf("  %-10s %8s %8s %10s %10s %10s %12s\n", "device", "steps",
              "skipped", "ratio p50", "ratio p95", "run ratio", "bound");
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const DriftReport rep = audit_drift(devices[d], drift_trace);
    const double ratio = rep.run_ratio();
    if (rep.n_steps == 0 || !std::isfinite(ratio) || ratio <= 0.0) {
      std::printf("ERROR: %s drift ratio not finite and positive "
                  "(%zu steps, ratio %g)\n",
                  rep.device.c_str(), rep.n_steps, ratio);
      failed = true;
    }
    std::printf("  %-10s %8zu %8zu %10.3g %10.3g %10.3g %9zu/%zu\n",
                rep.device.c_str(), rep.n_steps, rep.skipped_steps,
                rep.ratio_p50, rep.ratio_p95, ratio,
                rep.compute_bound_steps, rep.dram_bound_steps);
    json << "    {\"device\": \"" << rep.device << "\", \"n_steps\": "
         << rep.n_steps << ", \"skipped_steps\": " << rep.skipped_steps
         << ", \"compute_bound_steps\": " << rep.compute_bound_steps
         << ", \"dram_bound_steps\": " << rep.dram_bound_steps
         << ",\n     \"measured_s\": " << rep.measured_s
         << ", \"predicted_s\": " << rep.predicted_s
         << ", \"run_ratio\": " << ratio
         << ",\n     \"ratio\": {\"min\": " << rep.ratio_min
         << ", \"p50\": " << rep.ratio_p50 << ", \"p95\": " << rep.ratio_p95
         << ", \"p99\": " << rep.ratio_p99 << ", \"max\": " << rep.ratio_max
         << "}}" << (d + 1 < devices.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\n");

  if (failed) return 1;
  std::printf("PASS: profile bench — profiler-off overhead ~0 (dispatch "
              "table untouched when disabled), profiled outputs bitwise "
              "identical to silent in fp32/int8/log2, drift ratio finite "
              "and positive on every device; per-kernel/per-layer/drift "
              "attribution written to %s\n",
              path.c_str());
  return 0;
}
