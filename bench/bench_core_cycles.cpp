// Section 5.2 throughput and latency claims: MACs/cycle per MU mode
// (256/512/1024), the per-token decode latency of Llama2-70B on the OPAL
// device (paper: 1.98 s), and the INT-vs-FP computation split (paper:
// 96.9% INT).
#include <cstdio>

#include "accel/core.h"
#include "accel/device.h"

int main() {
  using namespace opal;
  const OpalCore core(CoreConfig{}, TechParams{});

  std::printf("=== Core throughput by INT MU mode ===\n");
  for (const auto mode :
       {MuMode::kHighHigh, MuMode::kLowHigh, MuMode::kLowLow}) {
    std::printf("%-10s %5zu MACs/cycle/core\n", to_string(mode).c_str(),
                core.macs_per_cycle(mode));
  }

  std::printf("\n=== MxV cycle counts (4096x4096, one core) ===\n");
  struct Case {
    const char* name;
    int w_bits, a_bits;
  };
  for (const auto& c : std::initializer_list<Case>{
           {"W4 x A4 (post-LN)", 4, 4},
           {"W4 x A7 (general)", 4, 7},
           {"A7 x A7 (Q.K^T)", 7, 7}}) {
    const auto stats =
        core.mxv_cost(4096, 4096, c.w_bits, c.a_bits, 4.0 / 128, 0.0025);
    std::printf("%-20s mode %-9s %9zu cycles  %5.1f%% INT\n", c.name,
                to_string(stats.mode).c_str(), stats.cycles,
                100.0 * stats.int_fraction());
  }

  std::printf("\n=== Llama2-70B decode on the OPAL device ===\n");
  const auto model = llama2_70b();
  for (const std::size_t seq : {256u, 1024u, 2048u}) {
    const auto report =
        simulate_token(make_opal_device(4, 7, 4), model, seq);
    std::printf("seq %5zu: latency %.2f s/token, %zu total MACs, %.1f%% on "
                "INT units\n",
                static_cast<std::size_t>(seq), report.latency_s,
                report.total_macs, 100.0 * report.int_mac_fraction);
  }

  std::printf("\nPaper reference: 256/512/1024 MACs per cycle; 1.98 s per "
              "token for Llama2-70B; 96.9%% of computations on INT "
              "multipliers.\n");
  return 0;
}
