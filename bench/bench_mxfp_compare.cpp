// Extension bench (beyond the paper): MX element-format shoot-out at equal
// bit budgets. Compares MXINT, MXFP (the OCP spec's FP element variants),
// and MX-OPAL on LLM-like activations — quantifying where outlier
// preservation beats spending bits on per-element exponents, the design
// choice at the heart of the paper.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "quant/mx_opal.h"
#include "quant/mxfp.h"
#include "quant/mxint.h"

int main() {
  using namespace opal;
  ActivationModel acts(77, 4096, 0.01f);
  Matrix data = acts.sample_matrix(16);
  std::vector<float> out(data.size());

  std::printf("=== MX element formats at equal bit budgets (k = 128) ===\n");
  std::printf("%-16s %6s %14s %10s\n", "Format", "bits", "MSE",
              "bits/elem");

  std::vector<std::unique_ptr<Quantizer>> quants;
  quants.push_back(std::make_unique<MxIntQuantizer>(128, 4));
  quants.push_back(
      std::make_unique<MxFpQuantizer>(128, MiniFloatFormat::e2m1()));
  quants.push_back(std::make_unique<MxOpalQuantizer>(128, 4, 4));
  quants.push_back(std::make_unique<MxIntQuantizer>(128, 6));
  quants.push_back(
      std::make_unique<MxFpQuantizer>(128, MiniFloatFormat::e2m3()));
  quants.push_back(
      std::make_unique<MxFpQuantizer>(128, MiniFloatFormat::e3m2()));
  quants.push_back(std::make_unique<MxOpalQuantizer>(128, 6, 4));
  quants.push_back(std::make_unique<MxIntQuantizer>(128, 8));
  quants.push_back(
      std::make_unique<MxFpQuantizer>(128, MiniFloatFormat::e4m3()));
  quants.push_back(std::make_unique<MxOpalQuantizer>(128, 8, 4));

  for (const auto& quant : quants) {
    quant->quantize_dequantize(data.flat(), out);
    std::printf("%-16s %6s %14.8f %10.2f\n", quant->name().c_str(), "",
                mse(data.flat(), out),
                static_cast<double>(quant->storage_bits(data.size())) /
                    static_cast<double>(data.size()));
  }

  std::printf("\nTakeaway: at 4 bits, FP elements (e2m1) tolerate block "
              "outliers better than MXINT4, but preserving four bf16 "
              "outliers (MX-OPAL4) beats both — per-element exponents pay "
              "their cost on every element, outlier preservation only where "
              "it matters.\n");
  return 0;
}
