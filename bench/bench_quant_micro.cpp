// Software microbenchmarks (google-benchmark) of the quantizer
// implementations: encode/decode throughput by scheme, bit-width, and
// tensor size, plus the log2 softmax unit. These measure the *simulator's*
// software cost, not hardware cycles.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "quant/minmax.h"
#include "quant/mx_opal.h"
#include "quant/mxint.h"
#include "softmax/softmax.h"

namespace {

std::vector<float> make_activations(std::size_t n) {
  opal::ActivationModel model(17, n, 0.01f);
  std::vector<float> v(n);
  model.sample(v);
  return v;
}

void BM_MinMaxQuantize(benchmark::State& state) {
  const auto in = make_activations(static_cast<std::size_t>(state.range(0)));
  std::vector<float> out(in.size());
  const opal::MinMaxQuantizer quant(128, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    quant.quantize_dequantize(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MinMaxQuantize)
    ->Args({4096, 4})
    ->Args({4096, 8})
    ->Args({65536, 4});

void BM_MxIntQuantize(benchmark::State& state) {
  const auto in = make_activations(static_cast<std::size_t>(state.range(0)));
  std::vector<float> out(in.size());
  const opal::MxIntQuantizer quant(128, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    quant.quantize_dequantize(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MxIntQuantize)
    ->Args({4096, 4})
    ->Args({4096, 8})
    ->Args({65536, 4});

void BM_MxOpalQuantize(benchmark::State& state) {
  const auto in = make_activations(static_cast<std::size_t>(state.range(0)));
  std::vector<float> out(in.size());
  const opal::MxOpalQuantizer quant(128, static_cast<int>(state.range(1)),
                                    static_cast<std::size_t>(state.range(2)));
  for (auto _ : state) {
    quant.quantize_dequantize(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MxOpalQuantize)
    ->Args({4096, 4, 4})
    ->Args({4096, 4, 8})
    ->Args({4096, 7, 4})
    ->Args({65536, 4, 4});

void BM_MxOpalEncode(benchmark::State& state) {
  const auto in = make_activations(static_cast<std::size_t>(state.range(0)));
  const opal::MxOpalQuantizer quant(128, 4, 4);
  for (auto _ : state) {
    auto qt = quant.encode(in);
    benchmark::DoNotOptimize(qt.blocks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MxOpalEncode)->Arg(4096)->Arg(65536);

void BM_Log2SoftmaxUnit(benchmark::State& state) {
  opal::Rng rng = opal::make_rng(3);
  std::vector<float> scores(static_cast<std::size_t>(state.range(0)));
  opal::fill_gaussian(rng, scores, 0.0f, 2.0f);
  for (auto _ : state) {
    auto codes =
        opal::log2_softmax_unit(scores, opal::Log2SoftmaxConfig{7});
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Log2SoftmaxUnit)->Arg(128)->Arg(2048);

void BM_SoftmaxReference(benchmark::State& state) {
  opal::Rng rng = opal::make_rng(4);
  std::vector<float> scores(static_cast<std::size_t>(state.range(0)));
  std::vector<float> probs(scores.size());
  opal::fill_gaussian(rng, scores, 0.0f, 2.0f);
  for (auto _ : state) {
    opal::softmax_reference(scores, probs);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SoftmaxReference)->Arg(128)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
