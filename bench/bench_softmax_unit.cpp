// Section 4.2 / 4.3.3 reproduction: accuracy and cost of the log2-based
// softmax. Prints (i) the approximation error of the Eq. (3) integer
// datapath vs exact log2 quantization, (ii) the end-to-end PPL impact of
// enabling only the log2 softmax on the eval model (paper: <0.4 PPL), and
// (iii) the unit-level area/power savings (paper: 32.3% / 35.7%).
#include <cmath>
#include <cstdio>
#include <vector>

#include "accel/tech.h"
#include "common/rng.h"
#include "eval/perplexity.h"
#include "softmax/softmax.h"

int main() {
  using namespace opal;

  // (i) Datapath accuracy against exact log2 quantization.
  Rng rng = make_rng(7);
  std::size_t total = 0, exact_match = 0, off_by_one = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> scores(128);
    fill_gaussian(rng, scores, 0.0f, 2.0f);
    const auto exact = log2_softmax_exact(scores, 7);
    const auto unit = log2_softmax_unit(scores, Log2SoftmaxConfig{7});
    for (std::size_t i = 0; i < exact.size(); ++i) {
      const int diff =
          std::abs(static_cast<int>(exact[i]) - static_cast<int>(unit[i]));
      exact_match += diff == 0;
      off_by_one += diff == 1;
      ++total;
    }
  }
  std::printf("=== Log2 softmax unit (Eq. 3 integer datapath) ===\n");
  std::printf("codes vs exact log2 quantization: %.2f%% exact, %.2f%% off "
              "by one, %.4f%% worse\n",
              100.0 * static_cast<double>(exact_match) / total,
              100.0 * static_cast<double>(off_by_one) / total,
              100.0 * static_cast<double>(total - exact_match - off_by_one) /
                  total);

  // (ii) End-to-end PPL impact of the approximation alone.
  SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 3, 64), 50, 0.02f);
  calibrate_logit_scale(model, 24, 51);
  EngineConfig base_cfg;
  base_cfg.max_seq_len = 194;
  InferenceEngine teacher(model, base_cfg);
  const auto tokens = generate_stream(teacher, 192, 52);
  const double base_ppl = evaluate_perplexity(teacher, tokens);

  for (const int bits : {5, 7}) {
    EngineConfig cfg = base_cfg;
    cfg.log2_softmax = true;
    cfg.softmax_bits = bits;
    InferenceEngine log2_engine(model, cfg);
    const double ppl = evaluate_perplexity(log2_engine, tokens);
    std::printf("PPL impact of log2 softmax (b=%d): %.3f -> %.3f (delta "
                "%+.3f)\n",
                bits, base_ppl, ppl, ppl - base_ppl);
  }

  // (iii) Unit cost comparison.
  const TechParams tech;
  const auto conv = conventional_softmax_cost(tech);
  std::printf("\nunit cost: conventional %.0f um^2 / %.2f mW, log2 %.0f "
              "um^2 / %.2f mW -> saves %.1f%% area, %.1f%% power "
              "(%.2fx power efficiency)\n",
              conv.area_um2, conv.power_mw, tech.log2_softmax_area,
              tech.log2_softmax_power,
              100.0 * (1.0 - tech.log2_softmax_area / conv.area_um2),
              100.0 * (1.0 - tech.log2_softmax_power / conv.power_mw),
              conv.power_mw / tech.log2_softmax_power);

  std::printf("\nPaper reference: <0.4 PPL increase on WikiText-2; 32.3%% "
              "area and 35.7%% power savings; 1.56x softmax power "
              "efficiency.\n");
  return 0;
}
