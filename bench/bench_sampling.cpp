// Sampling bench: what each sampling policy costs on the serving hot path,
// and how far its output wanders from greedy — with the seeded-determinism
// contract asserted on the way.
//
// Workload: 8 requests sharing a 16-token system prefix (distinct 4-token
// tails, 32 generated tokens each) served through a FIFO ServingEngine with
// 8-token prefill chunks, fp32 paged KV, 4 slots. The same request set runs
// under four sampling configurations: greedy argmax (the baseline),
// temperature 1.2, top-k 20 (t 1.1), and top-p 0.95 over top-k 50 (t 1.2).
//
// Reported per policy: serve wall time, decode throughput (tokens/s), and
// output divergence — the fraction of generated positions whose token
// differs from the greedy stream of the same request.
//
// Asserted (exit 1):
//   * the greedy streams match an independently computed argmax decode
//     (inline max loop, dense facade — no Sampler code involved), so the
//     default path regressing cannot slip through as "zero divergence";
//   * re-serving the identical seeded request set yields bitwise identical
//     streams (same engine config, fresh engine);
//   * serving it under a different scheduler (fair-share, threaded decode,
//     quarter-size pool) yields the SAME streams — seeded sampling is
//     scheduling-invariant.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "eval/schemes.h"
#include "llm/engine.h"
#include "llm/scheduler.h"
#include "llm/serving_engine.h"

namespace {

using namespace opal;

struct PolicyRun {
  std::string name;
  std::vector<std::vector<std::size_t>> streams;  // per request
  double seconds = 0.0;
  std::size_t decodes = 0;
  std::size_t steps = 0;
};

PolicyRun serve(const std::shared_ptr<const PreparedModel>& model,
                ServingConfig cfg, std::string name,
                const std::vector<Request>& requests) {
  PolicyRun out;
  out.name = std::move(name);
  ServingEngine engine(model, cfg);
  std::vector<RequestId> ids;
  for (const auto& req : requests) ids.push_back(engine.submit(req));
  const auto t0 = std::chrono::steady_clock::now();
  while (true) {
    const std::size_t n = engine.step();
    if (n == 0) break;
    out.decodes += n;
    ++out.steps;
  }
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  for (const RequestId id : ids) {
    out.streams.push_back(engine.result(id).tokens);
  }
  return out;
}

std::vector<Request> workload(const SamplingParams& sampling) {
  std::vector<std::size_t> prefix;
  for (std::size_t i = 0; i < 16; ++i) prefix.push_back((i * 11 + 5) % 256);
  std::vector<Request> requests;
  for (std::size_t r = 0; r < 8; ++r) {
    Request req;
    req.prompt = prefix;
    for (std::size_t i = 0; i < 4; ++i) {
      req.prompt.push_back((i * 29 + 7 * r + 3) % 256);
    }
    req.max_new_tokens = 32;
    req.sampling = sampling;
    req.sampling.seed = 1000 + r;  // per-request stream
    requests.push_back(std::move(req));
  }
  return requests;
}

double divergence(const PolicyRun& run, const PolicyRun& greedy,
                  std::size_t prompt_len) {
  std::size_t differ = 0, total = 0;
  for (std::size_t r = 0; r < run.streams.size(); ++r) {
    for (std::size_t t = prompt_len; t < run.streams[r].size(); ++t) {
      ++total;
      if (run.streams[r][t] != greedy.streams[r][t]) ++differ;
    }
  }
  return static_cast<double>(differ) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  SyntheticModel model(scaled_for_eval(llama2_7b(), 128, 3, 256), 7);
  calibrate_logit_scale(model, 24, 8);

  EngineConfig cfg;
  cfg.max_seq_len = 128;
  cfg.kv_block_size = 16;
  auto prepared = std::make_shared<const PreparedModel>(model, cfg);

  ServingConfig base;
  base.max_batch = 4;
  base.prefill_chunk_tokens = 8;

  SamplingParams greedy;  // defaults
  SamplingParams temp;
  temp.policy = SamplePolicy::kTemperature;
  temp.temperature = 1.2f;
  SamplingParams topk;
  topk.policy = SamplePolicy::kTopK;
  topk.temperature = 1.1f;
  topk.top_k = 20;
  SamplingParams topp;
  topp.policy = SamplePolicy::kTopP;
  topp.temperature = 1.2f;
  topp.top_k = 50;
  topp.top_p = 0.95f;

  const struct {
    const char* name;
    const SamplingParams* params;
  } policies[] = {{"greedy", &greedy},
                  {"temperature 1.2", &temp},
                  {"top-k 20 / t1.1", &topk},
                  {"top-p .95 k50 t1.2", &topp}};

  std::vector<PolicyRun> runs;
  for (const auto& policy : policies) {
    runs.push_back(
        serve(prepared, base, policy.name, workload(*policy.params)));
  }
  const std::size_t prompt_len = 20;

  std::printf("8 shared-prefix requests (20-token prompt, 32 generated), "
              "4 slots, fp32 paged KV, 8-token chunks\n\n");
  std::printf("%-20s %10s %8s %10s %12s\n", "sampling policy", "tokens/s",
              "steps", "total s", "divergence");
  for (const auto& run : runs) {
    std::printf("%-20s %10.1f %8zu %10.3f %11.1f%%\n", run.name.c_str(),
                static_cast<double>(run.decodes) / run.seconds, run.steps,
                run.seconds, 100.0 * divergence(run, runs[0], prompt_len));
  }

  {
    const std::string path = argc > 1 ? argv[1] : "BENCH_sampling.json";
    std::ofstream json(path);
    json.precision(4);
    json << std::fixed << "{\n  \"bench\": \"sampling\",\n"
         << "  \"policies\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& run = runs[i];
      json << "    {\"policy\": \"" << run.name << "\", \"tokens_per_s\": "
           << static_cast<double>(run.decodes) / run.seconds
           << ", \"steps\": " << run.steps << ", \"wall_s\": " << run.seconds
           << ", \"divergence\": " << divergence(run, runs[0], prompt_len)
           << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
  }

  // --- assertions ---
  // Greedy regression guard: the sampled greedy streams must match an
  // independently computed argmax decode (inline max loop over a dense
  // facade — no Sampler involved), token for token.
  {
    const auto requests = workload(greedy);
    for (std::size_t r = 0; r < requests.size(); ++r) {
      InferenceEngine dense(prepared);
      std::vector<std::size_t> ref = requests[r].prompt;
      const std::size_t target = ref.size() + requests[r].max_new_tokens;
      std::size_t fed = 0;
      while (fed < ref.size()) {
        const auto logits = dense.step(ref[fed]);
        ++fed;
        if (fed == ref.size() && ref.size() < target) {
          std::size_t best = 0;
          for (std::size_t i = 1; i < logits.size(); ++i) {
            if (logits[i] > logits[best]) best = i;
          }
          ref.push_back(best);
          if (ref.size() == target) break;
        }
      }
      if (ref != runs[0].streams[r]) {
        std::printf("\nERROR: greedy stream %zu diverged from the inline "
                    "argmax baseline\n", r);
        return 1;
      }
    }
  }
  for (const auto& policy : policies) {
    const auto again =
        serve(prepared, base, policy.name, workload(*policy.params));
    if (again.streams != runs[&policy - policies].streams) {
      std::printf("\nERROR: %s re-serve produced different streams\n",
                  policy.name);
      return 1;
    }
    // Scheduling invariance: fair-share budgets, threaded decode, and a
    // quarter-size pool (organic preemption/replay) must not change one
    // token of any seeded stream.
    ServingConfig alt = base;
    alt.scheduler = std::make_shared<FairShareScheduler>();
    alt.n_threads = 2;
    alt.kv_pool_blocks =
        base.max_batch * prepared->kv_blocks_per_sequence() / 4;
    const auto scheduled =
        serve(prepared, alt, policy.name, workload(*policy.params));
    if (scheduled.streams != runs[&policy - policies].streams) {
      std::printf("\nERROR: %s streams changed under fair-share + threads "
                  "+ quarter pool\n",
                  policy.name);
      return 1;
    }
  }
  std::printf("\nPASS: seeded sampling deterministic and scheduling-"
              "invariant across re-serve, fair-share, threaded decode, and "
              "a quarter-size pool; greedy unchanged\n");
  return 0;
}
