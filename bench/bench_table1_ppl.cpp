// Table 1 reproduction: perplexity of the four evaluation models under the
// nine quantization schemes, via the teacher-student proxy (DESIGN.md §2).
// Each model column uses the scaled-down preset of the named architecture;
// the BF16 engine is the teacher whose sampled stream plays WikiText-2.
#include <cstdio>
#include <vector>

#include "eval/perplexity.h"
#include "eval/schemes.h"

namespace {

struct ModelRun {
  std::string name;
  std::vector<double> ppl;  // one per scheme
};

ModelRun run_model(const opal::ModelConfig& full, std::uint64_t seed) {
  using namespace opal;
  const auto cfg = scaled_for_eval(full, 128, 3, 256);
  SyntheticModel model(cfg, seed, 0.02f);
  calibrate_logit_scale(model, 24, seed + 1);
  const auto calibration = calibrate_model(model, 48, seed + 2);

  const std::size_t n_tokens = 320;
  EngineConfig teacher_cfg;
  teacher_cfg.max_seq_len = n_tokens + 2;
  InferenceEngine teacher(model, teacher_cfg);
  const auto tokens = generate_stream(teacher, n_tokens, seed + 3);

  ModelRun run;
  run.name = full.name;
  for (const auto& scheme : table1_schemes()) {
    EngineConfig engine_cfg = scheme.config;
    engine_cfg.max_seq_len = n_tokens + 2;
    InferenceEngine engine(model, engine_cfg, &calibration);
    run.ppl.push_back(evaluate_perplexity(engine, tokens));
  }
  return run;
}

}  // namespace

int main() {
  using namespace opal;
  std::printf("=== Table 1: perplexity (teacher-student proxy) on scaled "
              "models ===\n");

  const std::vector<ModelConfig> models = {llama2_7b(), llama2_13b(),
                                           opt_6_7b(), opt_13b()};
  std::vector<ModelRun> runs;
  for (std::size_t i = 0; i < models.size(); ++i) {
    runs.push_back(run_model(models[i], 100 + 17 * i));
  }

  std::printf("%-20s", "Scheme");
  for (const auto& run : runs) std::printf(" %12s", run.name.c_str());
  std::printf("\n");
  const auto schemes = table1_schemes();
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::printf("%-20s", schemes[s].label.c_str());
    for (const auto& run : runs) std::printf(" %12.3f", run.ppl[s]);
    std::printf("\n");
  }

  std::printf(
      "\nPaper reference (shape): MX-OPAL tracks the BF16 baseline within "
      "~1 PPL at W4A4/7; the W3A3/5 MinMax rows blow up (32.7/10.8/28.7/"
      "95.8 on the real models) while W3A3/5 MX-OPAL stays close.\n");
  return 0;
}
