// Table 1 reproduction: perplexity of the four evaluation models under the
// nine quantization schemes, via the teacher-student proxy (DESIGN.md §2).
// Each model column uses the scaled-down preset of the named architecture;
// the BF16 engine is the teacher whose sampled streams play WikiText-2.
//
// Runs on the batched serving path: per scheme the weights are prepared
// exactly once into a shared PreparedModel, and the evaluation streams are
// scored concurrently by a continuously-batched ServingEngine (bitwise
// identical to scoring them one engine at a time — see test_serving.cpp).
#include <cmath>
#include <cstdio>
#include <vector>

#include "eval/perplexity.h"
#include "eval/schemes.h"

namespace {

constexpr std::size_t kStreams = 4;     // concurrent sequences per scheme
constexpr std::size_t kStreamLen = 160;  // tokens per stream
constexpr std::size_t kThreads = 2;     // decode fan-out per step

const std::vector<opal::KvQuantMode> kKvModes = {
    opal::KvQuantMode::kFp32, opal::KvQuantMode::kInt8,
    opal::KvQuantMode::kLog2};

struct ModelRun {
  std::string name;
  std::vector<double> ppl;  // one per scheme (mean over streams)
  // Paged-KV accuracy cost: PPL of the paper's flagship W4A4/7 MX-OPAL
  // scheme under each KV storage mode (same streams, same weights).
  std::vector<double> kv_ppl;  // one per kKvModes entry
};

double pooled_ppl(const std::vector<double>& per_stream) {
  // Pooled corpus perplexity exp(total CE / total predictions): with
  // equal-length streams this is the geometric mean of per-stream PPLs
  // (an arithmetic mean would be upward-biased by Jensen's inequality).
  double log_sum = 0.0;
  for (const double p : per_stream) log_sum += std::log(p);
  return std::exp(log_sum / static_cast<double>(per_stream.size()));
}

ModelRun run_model(const opal::ModelConfig& full, std::uint64_t seed) {
  using namespace opal;
  const auto cfg = scaled_for_eval(full, 128, 3, 256);
  SyntheticModel model(cfg, seed, 0.02f);
  calibrate_logit_scale(model, 24, seed + 1);
  const auto calibration = calibrate_model(model, 48, seed + 2);

  // One shared BF16 teacher; each stream samples through its own cheap
  // facade (SequenceState) over the same prepared weights.
  EngineConfig teacher_cfg;
  teacher_cfg.max_seq_len = kStreamLen + 2;
  auto teacher = std::make_shared<const PreparedModel>(model, teacher_cfg);
  std::vector<std::vector<std::size_t>> streams;
  for (std::size_t s = 0; s < kStreams; ++s) {
    InferenceEngine facade(teacher);
    streams.push_back(generate_stream(facade, kStreamLen, seed + 3 + s));
  }

  ModelRun run;
  run.name = full.name;
  const auto schemes = table1_schemes();
  for (const auto& scheme : schemes) {
    EngineConfig engine_cfg = scheme.config;
    engine_cfg.max_seq_len = kStreamLen + 2;
    const PreparedModel prepared(model, engine_cfg, &calibration);
    run.ppl.push_back(
        pooled_ppl(evaluate_perplexity_batched(prepared, streams, kThreads)));
  }

  // KV-mode sweep on W4A4/7 MX-OPAL: weights and activations fixed, only
  // the paged cache's entry storage changes. The fp32-KV row is exactly
  // the scheme-table entry above (default kv_mode is fp32) — reuse it
  // instead of re-quantizing and re-scoring; if the scheme table ever
  // drops that row, fall through and compute it like the other modes.
  std::ptrdiff_t mx_opal_row = -1;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    if (schemes[s].label == "W4A4/7 (MX-OPAL)") {
      mx_opal_row = static_cast<std::ptrdiff_t>(s);
      break;
    }
  }
  for (const KvQuantMode mode : kKvModes) {
    if (mode == KvQuantMode::kFp32 && mx_opal_row >= 0) {
      run.kv_ppl.push_back(run.ppl[static_cast<std::size_t>(mx_opal_row)]);
      continue;
    }
    EngineConfig engine_cfg = scheme_mx_opal(4, 4, 7);
    engine_cfg.max_seq_len = kStreamLen + 2;
    engine_cfg.kv_mode = mode;
    const PreparedModel prepared(model, engine_cfg, &calibration);
    run.kv_ppl.push_back(
        pooled_ppl(evaluate_perplexity_batched(prepared, streams, kThreads)));
  }
  return run;
}

}  // namespace

int main() {
  using namespace opal;
  std::printf("=== Table 1: perplexity (teacher-student proxy) on scaled "
              "models ===\n");
  std::printf("(each cell: pooled PPL over %zu streams of %zu tokens, scored "
              "concurrently on the batched serving path)\n",
              kStreams, kStreamLen);

  const std::vector<ModelConfig> models = {llama2_7b(), llama2_13b(),
                                           opt_6_7b(), opt_13b()};
  std::vector<ModelRun> runs;
  for (std::size_t i = 0; i < models.size(); ++i) {
    runs.push_back(run_model(models[i], 100 + 17 * i));
  }

  std::printf("%-20s", "Scheme");
  for (const auto& run : runs) std::printf(" %12s", run.name.c_str());
  std::printf("\n");
  const auto schemes = table1_schemes();
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::printf("%-20s", schemes[s].label.c_str());
    for (const auto& run : runs) std::printf(" %12.3f", run.ppl[s]);
    std::printf("\n");
  }

  std::printf(
      "\nPaper reference (shape): MX-OPAL tracks the BF16 baseline within "
      "~1 PPL at W4A4/7; the W3A3/5 MinMax rows blow up (32.7/10.8/28.7/"
      "95.8 on the real models) while W3A3/5 MX-OPAL stays close.\n");

  std::printf("\n=== Paged KV-cache storage mode (W4A4/7 MX-OPAL, batched "
              "serving path) ===\n");
  std::printf("(delta vs fp32-paged KV, which is bitwise identical to the "
              "dense cache)\n");
  std::printf("%-20s", "KV mode");
  for (const auto& run : runs) std::printf(" %12s", run.name.c_str());
  std::printf("\n");
  for (std::size_t m = 0; m < kKvModes.size(); ++m) {
    const std::size_t bits = kv_bits_per_entry(kKvModes[m]);
    const std::string label =
        to_string(kKvModes[m]) + " (" + std::to_string(bits) + "b)";
    std::printf("%-20s", label.c_str());
    for (const auto& run : runs) std::printf(" %12.3f", run.kv_ppl[m]);
    std::printf("\n");
    if (m > 0) {
      std::printf("%-20s", "  delta vs fp32");
      for (const auto& run : runs) {
        std::printf(" %+12.3f", run.kv_ppl[m] - run.kv_ppl[0]);
      }
      std::printf("\n");
    }
  }
  return 0;
}
