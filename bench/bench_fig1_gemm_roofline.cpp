// Fig 1 reproduction: single-batch latency of the Llama2 mlp.0 layer at
// three weight/activation bit-width combinations on an A100-class roofline.
// Prints one bar group per model with speedups over the FP16 baseline.
#include <cstdio>

#include "roofline/gpu_roofline.h"

int main() {
  const opal::GpuModel gpu;
  std::printf("=== Fig 1: mlp.0 single-batch GEMV latency (A100 roofline "
              "model) ===\n");
  std::printf("%-12s %26s %26s %26s\n", "Model", "W FP16 & A FP16 (us)",
              "W INT4 & A FP16 (us)", "W INT4 & A INT8 (us)");
  for (const auto& model :
       {opal::llama2_7b(), opal::llama2_13b(), opal::llama2_70b()}) {
    const auto row = opal::fig1_row(gpu, model);
    std::printf("%-12s %20.1f %19.1f (x%.1f) %19.1f (x%.1f)\n",
                row.model.c_str(), row.w16a16_us, row.w4a16_us,
                row.speedup_w4a16(), row.w4a8_us, row.speedup_w4a8());
  }
  std::printf("\nPaper reference: W4A16 speedups ~1.5x (13B) / 2.0x (70B); "
              "W4A8 speedups 2.0~4.0x across sizes.\n");
  return 0;
}
