// Table 3 reproduction: area and power breakdown of one OPAL core
// (W4A4/7) from the calibrated 65nm component library, plus the W3A3/5
// variant as the ablation the paper's Fig 8 relies on.
#include <cstdio>

#include "accel/tech.h"

namespace {

void print_core(const char* title, const opal::CoreConfig& config) {
  const auto cost = opal::core_cost(config, opal::TechParams{});
  std::printf("--- %s ---\n", title);
  std::printf("%-26s %14s %10s %12s %9s\n", "Block", "Area (um^2)", "(%)",
              "Power (mW)", "(%)");
  const auto row = [&](const opal::BlockCost& block) {
    std::printf("%-26s %14.2f %9.2f%% %12.2f %8.2f%%\n", block.name.c_str(),
                block.area_um2, 100.0 * block.area_um2 / cost.total_area_um2(),
                block.power_mw, 100.0 * block.power_mw / cost.total_power_mw());
  };
  row(cost.lanes);
  row(cost.distributors);
  row(cost.softmax);
  row(cost.quantizer);
  row(cost.fp_adder_tree);
  std::printf("%-26s %14.2f %10s %12.2f\n\n", "Total",
              cost.total_area_um2(), "", cost.total_power_mw());
}

}  // namespace

int main() {
  using namespace opal;
  std::printf("=== Table 3: area and power breakdown of one OPAL core "
              "===\n");
  print_core("OPAL core, W4A4/7 (paper's Table 3)", CoreConfig{});

  CoreConfig w35;
  w35.low_bits = 3;
  w35.high_bits = 5;
  print_core("OPAL core, W3A3/5 (Fig 8 variant)", w35);

  const TechParams tech;
  const auto conv = conventional_softmax_cost(tech);
  std::printf("Softmax unit comparison (Section 4.3.3):\n");
  std::printf("  conventional: %.0f um^2, %.2f mW\n", conv.area_um2,
              conv.power_mw);
  std::printf("  log2-based:   %.0f um^2, %.2f mW  (-%.1f%% area, -%.1f%% "
              "power, %.2fx power efficiency)\n",
              tech.log2_softmax_area, tech.log2_softmax_power,
              100.0 * (1.0 - tech.log2_softmax_area / conv.area_um2),
              100.0 * (1.0 - tech.log2_softmax_power / conv.power_mw),
              conv.power_mw / tech.log2_softmax_power);

  const auto divq = minmax_quantizer_cost(tech);
  std::printf("Dynamic quantizer comparison (motivation 2):\n");
  std::printf("  divider-based MinMax: %.0f um^2, %.2f mW\n", divq.area_um2,
              divq.power_mw);
  std::printf("  shift-based MX-OPAL:  %.0f um^2, %.2f mW\n",
              tech.mx_quantizer_area, tech.mx_quantizer_power);

  std::printf("\nPaper reference: lanes 72.1%%/68.4%%, distributors "
              "15.0%%/18.8%%, softmax 8.2%%/8.2%%, quantizer 3.7%%/4.2%%, "
              "total 929312 um^2 / 335.85 mW.\n");
  return 0;
}
